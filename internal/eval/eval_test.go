package eval

import (
	"math"
	"testing"

	"lesm/internal/core"
	"lesm/internal/hin"
	"lesm/internal/synth"
)

func TestHPMIPositiveForCoherentSets(t *testing.T) {
	// Words 0,1,2 always co-occur; 3,4,5 always co-occur; the groups never
	// mix, so within-group HPMI must exceed cross-group HPMI.
	var docs []hin.DocRecord
	for i := 0; i < 50; i++ {
		docs = append(docs, hin.DocRecord{Tokens: []int{0, 1, 2}})
		docs = append(docs, hin.DocRecord{Tokens: []int{3, 4, 5}})
	}
	e := NewHPMIEvaluator(docs)
	within := e.PairHPMI(0, []int{0, 1, 2}, 0, []int{0, 1, 2})
	mixed := e.PairHPMI(0, []int{0, 1, 4}, 0, []int{0, 1, 4})
	if within <= mixed {
		t.Fatalf("within=%v should exceed mixed=%v", within, mixed)
	}
	if within <= 0 {
		t.Fatalf("coherent set HPMI = %v, want > 0", within)
	}
}

func TestHPMICrossType(t *testing.T) {
	var docs []hin.DocRecord
	for i := 0; i < 40; i++ {
		docs = append(docs, hin.DocRecord{
			Tokens:   []int{0, 1},
			Entities: map[core.TypeID][]int{1: {0}},
		})
		docs = append(docs, hin.DocRecord{
			Tokens:   []int{2, 3},
			Entities: map[core.TypeID][]int{1: {1}},
		})
	}
	e := NewHPMIEvaluator(docs)
	good := e.PairHPMI(0, []int{0, 1}, 1, []int{0})
	bad := e.PairHPMI(0, []int{0, 1}, 1, []int{1})
	if good <= bad {
		t.Fatalf("aligned entity HPMI %v should exceed misaligned %v", good, bad)
	}
}

func TestTopicTopNodes(t *testing.T) {
	n := &core.TopicNode{Phi: map[core.TypeID][]float64{0: {0.1, 0.5, 0.4}}}
	top := TopicTopNodes(n, 0, 2)
	if top[0] != 1 || top[1] != 2 {
		t.Fatalf("top = %v", top)
	}
}

// truthHierarchy builds a hierarchy whose topics carry the ground-truth
// phrases themselves: the best case any method could produce.
func truthHierarchy(ds *synth.Dataset) *core.Hierarchy {
	h := core.NewHierarchy()
	for _, area := range ds.Truth.Root.Children {
		an := h.Root.AddChild()
		for _, p := range area.Phrases {
			an.Phrases = append(an.Phrases, core.RankedPhrase{Display: p, Score: 1})
		}
		for _, sub := range area.Children {
			sn := an.AddChild()
			for _, p := range sub.Phrases {
				sn.Phrases = append(sn.Phrases, core.RankedPhrase{Display: p, Score: 1})
				an.Phrases = append(an.Phrases, core.RankedPhrase{Display: p, Score: 0.5})
			}
		}
	}
	return h
}

// garbageHierarchy assigns phrases to topics at random: the worst case.
func garbageHierarchy(ds *synth.Dataset) *core.Hierarchy {
	h := core.NewHierarchy()
	var all []string
	for _, n := range ds.Truth.Root.Flatten() {
		all = append(all, n.Phrases...)
	}
	idx := 0
	for i := 0; i < 4; i++ {
		an := h.Root.AddChild()
		for j := 0; j < 10; j++ {
			an.Phrases = append(an.Phrases, core.RankedPhrase{Display: all[idx%len(all)], Score: 1})
			idx += 7
		}
	}
	return h
}

func TestPhraseIntrusionSeparatesGoodFromBad(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 200, NumAuthors: 50, Seed: 111})
	cfg := IntrusionConfig{Questions: 120, Seed: 112}
	good := PhraseIntrusion(truthHierarchy(ds).Root, ds.Truth, cfg)
	bad := PhraseIntrusion(garbageHierarchy(ds).Root, ds.Truth, cfg)
	if good < 0.6 {
		t.Fatalf("truth hierarchy intrusion = %v, want >= 0.6", good)
	}
	if good <= bad+0.2 {
		t.Fatalf("good (%v) should clearly beat bad (%v)", good, bad)
	}
}

func TestTopicIntrusion(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 200, NumAuthors: 50, Seed: 113})
	cfg := IntrusionConfig{Questions: 60, Seed: 114}
	got := TopicIntrusion(truthHierarchy(ds).Root, ds.Truth, cfg)
	if got < 0.5 {
		t.Fatalf("topic intrusion on truth hierarchy = %v", got)
	}
}

func TestEntityIntrusion(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 400, NumAuthors: 100, Seed: 115})
	// Build a hierarchy with ground-truth-aligned entity lists.
	h := core.NewHierarchy()
	nl := ds.Truth.NumLeaves()
	byLeaf := make([][]core.RankedEntity, nl)
	for a := 0; a < ds.NumNodes[1]; a++ {
		aff := ds.Truth.EntityAffinity(1, a)
		for l, v := range aff {
			if v > 0.9 {
				byLeaf[l] = append(byLeaf[l], core.RankedEntity{ID: a, Score: 1})
			}
		}
	}
	for l := 0; l < nl; l++ {
		c := h.Root.AddChild()
		c.Entities[1] = byLeaf[l]
	}
	got := EntityIntrusion(h.Root, ds.Truth, 1, 10, IntrusionConfig{Questions: 80, Seed: 116})
	if got < 0.6 {
		t.Fatalf("entity intrusion on aligned lists = %v", got)
	}
}

func TestNKQMOrdersMethods(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 200, NumAuthors: 50, Seed: 117})
	good := [][]core.RankedPhrase{}
	bad := [][]core.RankedPhrase{}
	for _, area := range ds.Truth.Root.Children[:4] {
		var g []core.RankedPhrase
		for _, sub := range area.Children {
			for _, p := range sub.Phrases {
				g = append(g, core.RankedPhrase{Display: p})
			}
		}
		good = append(good, g)
		// Bad: unrelated phrases from another area mixed in at the top.
		other := ds.Truth.Root.Children[(len(bad)+2)%6]
		var b []core.RankedPhrase
		for _, p := range other.Children[0].Phrases {
			b = append(b, core.RankedPhrase{Display: p})
		}
		b = append(b, g...)
		bad = append(bad, b)
	}
	gn := NKQM(good, ds.Truth, 10, 5, 0.05, 118)
	bn := NKQM(bad, ds.Truth, 10, 5, 0.05, 118)
	if gn <= bn {
		t.Fatalf("nKQM: good %v should beat bad %v", gn, bn)
	}
	if gn <= 0 || gn > 1.0001 {
		t.Fatalf("nKQM out of range: %v", gn)
	}
}

func TestMIAtKPrefersAlignedPhrases(t *testing.T) {
	ds := synth.Arxiv(synth.TextConfig{NumDocs: 800, Seed: 119})
	// Aligned: each topic's phrases from its true subfield.
	var aligned, shuffled [][]core.RankedPhrase
	subs := ds.Truth.Root.Children
	for i, sub := range subs {
		var a, s []core.RankedPhrase
		for _, p := range sub.Phrases {
			a = append(a, core.RankedPhrase{Display: p})
		}
		for _, p := range subs[(i+1)%len(subs)].Phrases[:4] {
			s = append(s, core.RankedPhrase{Display: p})
		}
		for _, p := range subs[(i+2)%len(subs)].Phrases[:4] {
			s = append(s, core.RankedPhrase{Display: p})
		}
		aligned = append(aligned, a)
		shuffled = append(shuffled, s)
	}
	ma := MIAtK(aligned, 10, ds.Corpus, ds.Truth.DocLabel, 5)
	ms := MIAtK(shuffled, 10, ds.Corpus, ds.Truth.DocLabel, 5)
	if ma <= ms {
		t.Fatalf("MI@K aligned %v should beat shuffled %v", ma, ms)
	}
	if ma <= 0 {
		t.Fatalf("aligned MI = %v", ma)
	}
}

func TestWeightedKappaProperties(t *testing.T) {
	// Perfect agreement -> kappa 1.
	a := []int{1, 2, 3, 4, 5, 1, 2, 3}
	if k := weightedKappa(a, a, 5); math.Abs(k-1) > 1e-12 {
		t.Fatalf("self kappa = %v", k)
	}
	// Inverted scores -> low/negative kappa.
	b := []int{5, 4, 3, 2, 1, 5, 4, 3}
	if k := weightedKappa(a, b, 5); k > 0.2 {
		t.Fatalf("inverted kappa = %v", k)
	}
}

func TestPRF1(t *testing.T) {
	pred := []int{1, -1, 2, 3}
	truth := []int{1, 2, 2, 4}
	p, r, f1 := PRF1(pred, truth, []int{0, 1, 2, 3})
	// tp=2 (items 0,2), fp=1 (item 3), fn=2 (items 1,3).
	if math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", p)
	}
	if math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
	if f1 <= 0 {
		t.Fatalf("f1 = %v", f1)
	}
}
