package eval

import (
	"math"
	"math/rand"

	"lesm/internal/core"
	"lesm/internal/synth"
)

// OracleJudge simulates a human annotator using the synthetic generator's
// ground truth: it scores items by their topical affinity vectors and errs
// at a configurable rate, standing in for the paper's three intrusion
// annotators and ten phrase-quality raters.
type OracleJudge struct {
	Truth *synth.Truth
	// Noise is the probability of a careless (uniform random) answer.
	Noise float64
	rng   *rand.Rand
}

// NewOracleJudge builds a judge with its own randomness.
func NewOracleJudge(truth *synth.Truth, noise float64, seed int64) *OracleJudge {
	return &OracleJudge{Truth: truth, Noise: noise, rng: rand.New(rand.NewSource(seed))}
}

func cosine(a, b []float64) float64 {
	var ab, aa, bb float64
	for i := range a {
		ab += a[i] * b[i]
		aa += a[i] * a[i]
		bb += b[i] * b[i]
	}
	if aa == 0 || bb == 0 {
		return 0
	}
	return ab / math.Sqrt(aa*bb)
}

// pickOutlier returns the index of the affinity vector least similar to the
// rest (the judge's intruder guess).
func (j *OracleJudge) pickOutlier(affs [][]float64) int {
	if j.rng.Float64() < j.Noise {
		return j.rng.Intn(len(affs))
	}
	worst, worstSim := 0, math.Inf(1)
	for i := range affs {
		s := 0.0
		for k := range affs {
			if k != i {
				s += cosine(affs[i], affs[k])
			}
		}
		if s < worstSim {
			worst, worstSim = i, s
		}
	}
	return worst
}

// PickPhraseIntruder answers a phrase-intrusion question.
func (j *OracleJudge) PickPhraseIntruder(phrases []string) int {
	affs := make([][]float64, len(phrases))
	for i, p := range phrases {
		affs[i] = j.Truth.PhraseAffinity(p)
	}
	return j.pickOutlier(affs)
}

// PickEntityIntruder answers an entity-intrusion question.
func (j *OracleJudge) PickEntityIntruder(x core.TypeID, ids []int) int {
	affs := make([][]float64, len(ids))
	for i, id := range ids {
		affs[i] = j.Truth.EntityAffinity(x, id)
	}
	return j.pickOutlier(affs)
}

// PickTopicIntruder answers a topic-intrusion question: options are
// candidate child topics, each summarized by its top phrases; the judge
// picks the one least related to the parent's phrases.
func (j *OracleJudge) PickTopicIntruder(parentPhrases []string, options [][]string) int {
	if j.rng.Float64() < j.Noise {
		return j.rng.Intn(len(options))
	}
	centroid := j.phraseCentroid(parentPhrases)
	worst, worstSim := 0, math.Inf(1)
	for i, opt := range options {
		s := cosine(centroid, j.phraseCentroid(opt))
		if s < worstSim {
			worst, worstSim = i, s
		}
	}
	return worst
}

func (j *OracleJudge) phraseCentroid(phrases []string) []float64 {
	out := make([]float64, j.Truth.NumLeaves())
	for _, p := range phrases {
		aff := j.Truth.PhraseAffinity(p)
		for i := range out {
			out[i] += aff[i]
		}
	}
	return out
}

// ScorePhrase rates a topical phrase on the 5-point Likert scale of the
// Section 4.4.1 user study: high when the phrase is topically concentrated,
// consistent with the topic centroid, and (for multiword phrases) a true
// collocation of the generator.
func (j *OracleJudge) ScorePhrase(phrase string, topicCentroid []float64) int {
	aff := j.Truth.PhraseAffinity(phrase)
	consistency := cosine(aff, topicCentroid)
	conc := 0.0
	for _, v := range aff {
		if v > conc {
			conc = v
		}
	}
	isTrue := 0.0
	if isMultiword(phrase) {
		if j.Truth.IsGeneratorPhrase(phrase) {
			isTrue = 1
		} else {
			isTrue = -0.5 // malformed multiword expression
		}
	}
	raw := 1 + 2.2*consistency + 1.1*conc + 0.7*isTrue + 0.35*j.rng.NormFloat64()
	score := int(math.Round(raw))
	if score < 1 {
		score = 1
	}
	if score > 5 {
		score = 5
	}
	return score
}

func isMultiword(p string) bool {
	for i := 0; i < len(p); i++ {
		if p[i] == ' ' {
			return true
		}
	}
	return false
}
