// Package eval implements the paper's evaluation machinery: pointwise
// mutual information and its heterogeneous extension HPMI (Eq. 3.44-3.45),
// the three intrusion-detection tasks of Section 3.3.2, the nKQM@K phrase
// quality measure of Section 4.4.1, mutual information at K (Figure 4.2),
// and relation-mining accuracy metrics.
//
// Human annotators are replaced by oracle judges that score items from the
// synthetic generator's ground truth with configurable noise (see DESIGN.md
// §2); the comparative signal between methods — what every table reports —
// is preserved.
package eval
