package eval

import (
	"math"

	"lesm/internal/core"
	"lesm/internal/hin"
)

// HPMIEvaluator computes heterogeneous pointwise mutual information from
// document-level co-occurrence statistics.
type HPMIEvaluator struct {
	docs []hin.DocRecord
	n    float64
	// occ[(type,node)] = sorted list of doc ids containing the node.
	occ map[[2]int][]int
}

// NewHPMIEvaluator indexes the documents.
func NewHPMIEvaluator(docs []hin.DocRecord) *HPMIEvaluator {
	e := &HPMIEvaluator{docs: docs, n: float64(len(docs)), occ: map[[2]int][]int{}}
	for di, d := range docs {
		seen := map[[2]int]bool{}
		add := func(x, id int) {
			key := [2]int{x, id}
			if !seen[key] {
				seen[key] = true
				e.occ[key] = append(e.occ[key], di)
			}
		}
		for _, w := range d.Tokens {
			add(0, w)
		}
		for x, ents := range d.Entities {
			for _, id := range ents {
				add(int(x), id)
			}
		}
	}
	return e
}

func intersectionSize(a, b []int) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// pmi computes log(p(a,b) / (p(a) p(b))) with additive smoothing so that
// never-co-occurring pairs contribute a strong negative rather than -Inf.
func (e *HPMIEvaluator) pmi(x core.TypeID, a int, y core.TypeID, b int) float64 {
	oa := e.occ[[2]int{int(x), a}]
	ob := e.occ[[2]int{int(y), b}]
	pa := (float64(len(oa)) + 0.5) / e.n
	pb := (float64(len(ob)) + 0.5) / e.n
	pab := (float64(intersectionSize(oa, ob)) + 0.1) / e.n
	return math.Log(pab / (pa * pb))
}

// PairHPMI computes Eq. 3.45 for the top node lists of two types: averaged
// pairwise PMI, over unordered pairs when x == y and over the full cross
// product otherwise.
func (e *HPMIEvaluator) PairHPMI(x core.TypeID, topX []int, y core.TypeID, topY []int) float64 {
	if len(topX) == 0 || len(topY) == 0 {
		return 0
	}
	if x == y {
		s, c := 0.0, 0
		for i := 0; i < len(topX); i++ {
			for j := i + 1; j < len(topX); j++ {
				s += e.pmi(x, topX[i], y, topX[j])
				c++
			}
		}
		if c == 0 {
			return 0
		}
		return s / float64(c)
	}
	s := 0.0
	for _, a := range topX {
		for _, b := range topY {
			s += e.pmi(x, a, y, b)
		}
	}
	return s / float64(len(topX)*len(topY))
}

// TopicTopNodes extracts a topic's top-k type-x nodes from its ranking
// distribution.
func TopicTopNodes(t *core.TopicNode, x core.TypeID, k int) []int {
	phi := t.Phi[x]
	type np struct {
		i int
		p float64
	}
	ns := make([]np, len(phi))
	for i, p := range phi {
		ns[i] = np{i, p}
	}
	// partial selection
	if k > len(ns) {
		k = len(ns)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(ns); j++ {
			if ns[j].p > ns[best].p || (ns[j].p == ns[best].p && ns[j].i < ns[best].i) {
				best = j
			}
		}
		ns[i], ns[best] = ns[best], ns[i]
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ns[i].i
	}
	return out
}

// TopicSetHPMI averages PairHPMI over a set of topics for one type pair.
// kPerType allows the venue-style exception (the paper uses K=3 for venues
// because only 20 exist).
func (e *HPMIEvaluator) TopicSetHPMI(topics []*core.TopicNode, x, y core.TypeID, kx, ky int) float64 {
	s := 0.0
	for _, t := range topics {
		s += e.PairHPMI(x, TopicTopNodes(t, x, kx), y, TopicTopNodes(t, y, ky))
	}
	if len(topics) == 0 {
		return 0
	}
	return s / float64(len(topics))
}
