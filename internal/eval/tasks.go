package eval

import (
	"math"
	"math/rand"

	"lesm/internal/core"
	"lesm/internal/synth"
	"lesm/internal/textkit"
)

// IntrusionConfig parameterizes question generation (Section 3.3.2: X = 5
// options, 3 annotators, majority scoring with failures on disagreement).
type IntrusionConfig struct {
	Options   int
	Questions int
	Judges    int
	Noise     float64
	Seed      int64
}

func (c IntrusionConfig) withDefaults() IntrusionConfig {
	if c.Options == 0 {
		c.Options = 5
	}
	if c.Questions == 0 {
		c.Questions = 100
	}
	if c.Judges == 0 {
		c.Judges = 3
	}
	if c.Noise == 0 {
		c.Noise = 0.12
	}
	return c
}

// topicsWithSiblings returns topics that have at least one sibling and at
// least need items of the given extractor.
func topicsWithSiblings(root *core.TopicNode, need int, items func(*core.TopicNode) int) []*core.TopicNode {
	var out []*core.TopicNode
	root.Walk(func(n *core.TopicNode) {
		if n.Parent() == nil || len(n.Parent().Children) < 2 {
			return
		}
		if items(n) >= need {
			out = append(out, n)
		}
	})
	return out
}

// PhraseIntrusion generates and scores phrase-intrusion questions against a
// hierarchy whose topics carry ranked phrases. It returns the fraction of
// questions whose intruder was identified by a strict majority of judges.
func PhraseIntrusion(root *core.TopicNode, truth *synth.Truth, cfg IntrusionConfig) float64 {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	judges := makeJudges(truth, cfg)
	pool := topicsWithSiblings(root, cfg.Options-1, func(n *core.TopicNode) int { return len(n.Phrases) })
	if len(pool) == 0 {
		return 0
	}
	correct, asked := 0, 0
	for q := 0; q < cfg.Questions; q++ {
		t := pool[rng.Intn(len(pool))]
		sib := pickSibling(rng, t)
		if sib == nil || len(sib.Phrases) == 0 {
			continue
		}
		items, intruder := buildQuestion(rng, cfg.Options,
			phraseStrings(t), phraseStrings(sib))
		if items == nil {
			continue
		}
		asked++
		votes := 0
		for _, j := range judges {
			if j.PickPhraseIntruder(items) == intruder {
				votes++
			}
		}
		if votes*2 > len(judges) {
			correct++
		}
	}
	if asked == 0 {
		return 0
	}
	return float64(correct) / float64(asked)
}

// EntityIntrusion scores entity-intrusion questions for node type x using
// the topics' ranked entity lists.
func EntityIntrusion(root *core.TopicNode, truth *synth.Truth, x core.TypeID, topK int, cfg IntrusionConfig) float64 {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(x)))
	judges := makeJudges(truth, cfg)
	items := func(n *core.TopicNode) int { return min(len(n.Entities[x]), topK) }
	pool := topicsWithSiblings(root, cfg.Options-1, items)
	if len(pool) == 0 {
		return 0
	}
	correct, asked := 0, 0
	for q := 0; q < cfg.Questions; q++ {
		t := pool[rng.Intn(len(pool))]
		sib := pickSibling(rng, t)
		if sib == nil || len(sib.Entities[x]) == 0 {
			continue
		}
		own := entityIDs(t, x, topK)
		other := entityIDs(sib, x, topK)
		ids, intruder := buildIntQuestion(rng, cfg.Options, own, other)
		if ids == nil {
			continue
		}
		asked++
		votes := 0
		for _, j := range judges {
			if j.PickEntityIntruder(x, ids) == intruder {
				votes++
			}
		}
		if votes*2 > len(judges) {
			correct++
		}
	}
	if asked == 0 {
		return 0
	}
	return float64(correct) / float64(asked)
}

// TopicIntrusion scores topic-intrusion questions: among X candidate child
// topics of a parent, one is not actually a child.
func TopicIntrusion(root *core.TopicNode, truth *synth.Truth, cfg IntrusionConfig) float64 {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	judges := makeJudges(truth, cfg)
	// Parents with at least two children (questions adapt to the smaller
	// of cfg.Options-1 and the available child count, like the paper's
	// X-option protocol with fewer candidates), plus at least one
	// non-descendant topic to serve as intruder.
	var parents []*core.TopicNode
	root.Walk(func(n *core.TopicNode) {
		if len(n.Children) >= 2 {
			parents = append(parents, n)
		}
	})
	if len(parents) == 0 {
		return 0
	}
	var all []*core.TopicNode
	root.Walk(func(n *core.TopicNode) {
		if n.Parent() != nil && len(n.Phrases) > 0 {
			all = append(all, n)
		}
	})
	correct, asked := 0, 0
	for q := 0; q < cfg.Questions; q++ {
		p := parents[rng.Intn(len(parents))]
		// Pick up to Options-1 real children with phrases.
		var realKids []*core.TopicNode
		for _, c := range p.Children {
			if len(c.Phrases) > 0 {
				realKids = append(realKids, c)
			}
		}
		if len(realKids) < 2 {
			continue
		}
		rng.Shuffle(len(realKids), func(a, b int) { realKids[a], realKids[b] = realKids[b], realKids[a] })
		if len(realKids) > cfg.Options-1 {
			realKids = realKids[:cfg.Options-1]
		}
		// Intruder: a topic that is not p or a descendant of p.
		var intruderTopic *core.TopicNode
		for tries := 0; tries < 20; tries++ {
			cand := all[rng.Intn(len(all))]
			if !isDescendantOf(cand, p) && cand != p {
				intruderTopic = cand
				break
			}
		}
		if intruderTopic == nil {
			continue
		}
		options := make([][]string, 0, cfg.Options)
		for _, c := range realKids {
			options = append(options, c.TopPhrases(5))
		}
		pos := rng.Intn(len(options) + 1)
		options = append(options, nil)
		copy(options[pos+1:], options[pos:])
		options[pos] = intruderTopic.TopPhrases(5)
		parentRepr := p.TopPhrases(5)
		if len(parentRepr) == 0 {
			// The root may have no phrases; represent it by its children.
			for _, c := range realKids {
				parentRepr = append(parentRepr, c.TopPhrases(2)...)
			}
		}
		asked++
		votes := 0
		for _, j := range judges {
			if j.PickTopicIntruder(parentRepr, options) == pos {
				votes++
			}
		}
		if votes*2 > len(judges) {
			correct++
		}
	}
	if asked == 0 {
		return 0
	}
	return float64(correct) / float64(asked)
}

func makeJudges(truth *synth.Truth, cfg IntrusionConfig) []*OracleJudge {
	out := make([]*OracleJudge, cfg.Judges)
	for i := range out {
		out[i] = NewOracleJudge(truth, cfg.Noise, cfg.Seed+int64(100+i))
	}
	return out
}

func pickSibling(rng *rand.Rand, t *core.TopicNode) *core.TopicNode {
	sibs := make([]*core.TopicNode, 0, len(t.Parent().Children)-1)
	for _, s := range t.Parent().Children {
		if s != t {
			sibs = append(sibs, s)
		}
	}
	if len(sibs) == 0 {
		return nil
	}
	return sibs[rng.Intn(len(sibs))]
}

func phraseStrings(t *core.TopicNode) []string {
	out := make([]string, len(t.Phrases))
	for i, p := range t.Phrases {
		out[i] = p.Display
	}
	return out
}

func entityIDs(t *core.TopicNode, x core.TypeID, k int) []int {
	es := t.Entities[x]
	if k > len(es) {
		k = len(es)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = es[i].ID
	}
	return out
}

// buildQuestion draws options-1 distinct items from own and one from other.
func buildQuestion(rng *rand.Rand, options int, own, other []string) ([]string, int) {
	own = dedupStrings(own)
	if len(own) < options-1 || len(other) == 0 {
		return nil, 0
	}
	rng.Shuffle(len(own), func(a, b int) { own[a], own[b] = own[b], own[a] })
	items := append([]string(nil), own[:options-1]...)
	intruder := other[rng.Intn(len(other))]
	pos := rng.Intn(options)
	items = append(items, "")
	copy(items[pos+1:], items[pos:])
	items[pos] = intruder
	return items, pos
}

func buildIntQuestion(rng *rand.Rand, options int, own, other []int) ([]int, int) {
	if len(own) < options-1 || len(other) == 0 {
		return nil, 0
	}
	own = append([]int(nil), own...)
	rng.Shuffle(len(own), func(a, b int) { own[a], own[b] = own[b], own[a] })
	items := own[:options-1]
	intruder := other[rng.Intn(len(other))]
	pos := rng.Intn(options)
	items = append(items, 0)
	copy(items[pos+1:], items[pos:])
	items[pos] = intruder
	return items, pos
}

func dedupStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func isDescendantOf(n, p *core.TopicNode) bool {
	for cur := n; cur != nil; cur = cur.Parent() {
		if cur == p {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- nKQM@K (Section 4.4.1) ---

// NKQM computes the normalized phrase quality measure at K for one method's
// per-topic rankings, using nJudges oracle raters: the agreement-weighted
// mean judge score of the j-th phrase is discounted by log2(j+1), summed,
// and normalized by the ideal ordering's score.
func NKQM(topics [][]core.RankedPhrase, truth *synth.Truth, k, nJudges int, noise float64, seed int64) float64 {
	judges := make([]*OracleJudge, nJudges)
	for i := range judges {
		judges[i] = NewOracleJudge(truth, noise, seed+int64(i))
	}
	total := 0.0
	for _, ranked := range topics {
		centroid := make([]float64, truth.NumLeaves())
		for i, p := range ranked {
			if i >= 20 {
				break
			}
			aff := truth.PhraseAffinity(p.Display)
			for l := range centroid {
				centroid[l] += aff[l]
			}
		}
		// Judge every phrase (for the ideal score we need all of them).
		n := len(ranked)
		if n == 0 {
			continue
		}
		scores := make([][]int, n) // per phrase, per judge
		aw := make([]float64, n)
		for i, p := range ranked {
			scores[i] = make([]int, nJudges)
			for ji, j := range judges {
				scores[i][ji] = j.ScorePhrase(p.Display, centroid)
			}
		}
		kappa := meanPairwiseWeightedKappa(scores, 5)
		for i := range scores {
			mean := 0.0
			for _, s := range scores[i] {
				mean += float64(s)
			}
			mean /= float64(nJudges)
			aw[i] = mean * kappa
		}
		got := 0.0
		for j := 0; j < k && j < n; j++ {
			got += aw[j] / math.Log2(float64(j)+2)
		}
		ideal := append([]float64(nil), aw...)
		sortDesc(ideal)
		idealScore := 0.0
		for j := 0; j < k && j < len(ideal); j++ {
			idealScore += ideal[j] / math.Log2(float64(j)+2)
		}
		if idealScore > 0 {
			total += got / idealScore
		}
	}
	return total / float64(len(topics))
}

func sortDesc(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] > x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

// meanPairwiseWeightedKappa computes the average quadratic-weighted Cohen's
// kappa across judge pairs (the agreement weight of the nKQM score).
func meanPairwiseWeightedKappa(scores [][]int, categories int) float64 {
	if len(scores) == 0 {
		return 0
	}
	nJudges := len(scores[0])
	total, pairs := 0.0, 0
	for a := 0; a < nJudges; a++ {
		for b := a + 1; b < nJudges; b++ {
			va := make([]int, len(scores))
			vb := make([]int, len(scores))
			for i := range scores {
				va[i] = scores[i][a]
				vb[i] = scores[i][b]
			}
			total += weightedKappa(va, vb, categories)
			pairs++
		}
	}
	if pairs == 0 {
		return 1
	}
	k := total / float64(pairs)
	if k < 0.05 {
		k = 0.05 // floor: fully random judges still yield a usable weight
	}
	return k
}

func weightedKappa(a, b []int, categories int) float64 {
	n := len(a)
	if n == 0 {
		return 0
	}
	obs := make([][]float64, categories)
	for i := range obs {
		obs[i] = make([]float64, categories)
	}
	ma := make([]float64, categories)
	mb := make([]float64, categories)
	for i := 0; i < n; i++ {
		obs[a[i]-1][b[i]-1]++
		ma[a[i]-1]++
		mb[b[i]-1]++
	}
	w := func(i, j int) float64 {
		d := float64(i - j)
		return d * d / float64((categories-1)*(categories-1))
	}
	var num, den float64
	for i := 0; i < categories; i++ {
		for j := 0; j < categories; j++ {
			num += w(i, j) * obs[i][j] / float64(n)
			den += w(i, j) * ma[i] * mb[j] / float64(n*n)
		}
	}
	if den == 0 {
		return 1
	}
	return 1 - num/den
}

// --- Mutual information at K (Figure 4.2) ---

// MIAtK implements the Section 4.4.1 procedure: label each of the top-K
// phrases per topic with the topic where it ranks highest; for each labeled
// document, accumulate (topic, class) co-occurrence from the phrases the
// document contains (averaged), or uniformly over topics when no labeled
// phrase matches; return the mutual information of the joint distribution.
func MIAtK(topics [][]core.RankedPhrase, k int, corpus *textkit.Corpus, labels []int, numClasses int) float64 {
	nT := len(topics)
	// Phrase -> best topic by rank position (earlier rank wins).
	bestTopic := map[string]int{}
	bestRank := map[string]int{}
	for t, ranked := range topics {
		for r, p := range ranked {
			if r >= k {
				break
			}
			if old, ok := bestRank[p.Display]; !ok || r < old {
				bestRank[p.Display] = r
				bestTopic[p.Display] = t
			}
		}
	}
	// Phrase word-sets for containment tests.
	type labeled struct {
		words []int
		topic int
	}
	var phrases []labeled
	for disp, t := range bestTopic {
		var words []int
		ok := true
		start := 0
		for i := 0; i <= len(disp); i++ {
			if i == len(disp) || disp[i] == ' ' {
				if i > start {
					id, found := corpus.Vocab.ID(disp[start:i])
					if !found {
						ok = false
						break
					}
					words = append(words, id)
				}
				start = i + 1
			}
		}
		if ok && len(words) > 0 {
			phrases = append(phrases, labeled{words, t})
		}
	}
	joint := make([][]float64, nT)
	for t := range joint {
		joint[t] = make([]float64, numClasses)
	}
	for di, doc := range corpus.Docs {
		c := labels[di]
		present := map[int]bool{}
		for _, w := range doc.Tokens {
			present[w] = true
		}
		var matched []int
		for _, p := range phrases {
			all := true
			for _, w := range p.words {
				if !present[w] {
					all = false
					break
				}
			}
			if all {
				matched = append(matched, p.topic)
			}
		}
		if len(matched) > 0 {
			w := 1 / float64(len(matched))
			for _, t := range matched {
				joint[t][c] += w
			}
		} else {
			for t := 0; t < nT; t++ {
				joint[t][c] += 1 / float64(nT)
			}
		}
	}
	// Mutual information.
	total := 0.0
	for t := range joint {
		for c := range joint[t] {
			total += joint[t][c]
		}
	}
	pt := make([]float64, nT)
	pc := make([]float64, numClasses)
	for t := range joint {
		for c := range joint[t] {
			joint[t][c] /= total
			pt[t] += joint[t][c]
			pc[c] += joint[t][c]
		}
	}
	mi := 0.0
	for t := range joint {
		for c := range joint[t] {
			if joint[t][c] > 0 && pt[t] > 0 && pc[c] > 0 {
				mi += joint[t][c] * math.Log2(joint[t][c]/(pt[t]*pc[c]))
			}
		}
	}
	return mi
}

// --- Relation metrics ---

// PRF1 computes precision, recall and F1 for relation predictions: pred[i]
// is the predicted parent (-1 = none), truth[i] the true parent, over the
// eval set.
func PRF1(pred, truth []int, eval []int) (p, r, f1 float64) {
	var tp, fp, fn float64
	for _, i := range eval {
		switch {
		case pred[i] >= 0 && pred[i] == truth[i]:
			tp++
		case pred[i] >= 0:
			fp++
			if truth[i] >= 0 {
				fn++
			}
		case truth[i] >= 0:
			fn++
		}
	}
	if tp+fp > 0 {
		p = tp / (tp + fp)
	}
	if tp+fn > 0 {
		r = tp / (tp + fn)
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return
}
