// Package search builds a tokenized inverted index over everything a
// snapshot knows by name — vocabulary words, phrase displays, and author
// ids/labels — with edit-distance-tolerant lookup (bounded Levenshtein,
// the "~2" fuzzy pattern: exact below 3 runes, one edit up to 5, two
// beyond).
//
// An Index is immutable after Build and safe for concurrent lock-free
// reads, so the serving tier builds one per snapshot generation inside
// its artifact-build path and swaps it with the rest of the generation
// behind an atomic.Pointer. Build is deterministic: the same snapshot
// always yields a bit-identical index (Checksum-gated by tests), keeping
// the serving tier's reproducibility contract intact.
package search
