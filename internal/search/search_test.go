package search

import (
	"reflect"
	"testing"

	"lesm/internal/core"
	"lesm/internal/store"
	"lesm/internal/tpfg"
)

func testSource() Source {
	return Source{
		Words: []string{"query", "processing", "index", "database", "network"},
		Phrases: []Phrase{
			{Display: "query processing", Path: "o/1", Score: 3},
			{Display: "network learning", Path: "o/2", Score: 2},
		},
		Authors: []Author{
			{ID: 0, Label: "John Smith"},
			{ID: 1, Label: "Jane Doe"},
			{ID: 2, Label: ""},
		},
	}
}

func TestBuildCounts(t *testing.T) {
	ix := Build(testSource())
	if ix.Entries() != 10 {
		t.Fatalf("Entries = %d, want 10", ix.Entries())
	}
	if ix.Terms() == 0 || ix.Postings() == 0 {
		t.Fatalf("empty dictionary: terms=%d postings=%d", ix.Terms(), ix.Postings())
	}
}

func TestExactSearchRanksAndTypes(t *testing.T) {
	ix := Build(testSource())
	hits := ix.Search("query", 10)
	if len(hits) < 2 {
		t.Fatalf("hits = %+v, want word + phrase", hits)
	}
	// The vocabulary word "query" is an exact full-name match (+1 bonus)
	// and must outrank the phrase that merely contains the token.
	if hits[0].Kind != KindWord || hits[0].Name != "query" {
		t.Fatalf("top hit = %+v, want the word entry", hits[0])
	}
	if hits[0].Score <= hits[1].Score {
		t.Fatalf("exact-name bonus missing: %v vs %v", hits[0].Score, hits[1].Score)
	}
	found := false
	for _, h := range hits {
		if h.Kind == KindPhrase && h.Name == "query processing" {
			found = true
		}
	}
	if !found {
		t.Fatalf("phrase hit missing from %+v", hits)
	}
}

func TestFuzzySearchWithinBound(t *testing.T) {
	ix := Build(testSource())
	// One edit: "databse" -> "database".
	hits := ix.Search("databse", 10)
	if len(hits) == 0 || hits[0].Name != "database" {
		t.Fatalf("distance-1 hits = %+v", hits)
	}
	if hits[0].Distance != 1 {
		t.Fatalf("Distance = %d, want 1", hits[0].Distance)
	}
	// Two edits on a long token: "procesing" missing s + swapped? use
	// "procesng" (two deletions) -> "processing".
	hits = ix.Search("procesng", 10)
	var names []string
	for _, h := range hits {
		names = append(names, h.Name)
	}
	ok := false
	for _, n := range names {
		if n == "processing" {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("distance-2 hits = %v, want processing", names)
	}
	// Beyond the bound: three edits never match.
	if hits := ix.Search("praacesng", 10); len(hits) != 0 {
		t.Fatalf("distance-3 should be empty, got %+v", hits)
	}
}

func TestShortTokensAreExactOnly(t *testing.T) {
	ix := Build(Source{Words: []string{"go", "of"}})
	if hits := ix.Search("ga", 10); len(hits) != 0 {
		t.Fatalf("2-rune tokens must match exactly, got %+v", hits)
	}
	if hits := ix.Search("go", 10); len(hits) != 1 || hits[0].Name != "go" {
		t.Fatalf("exact short token: %+v", hits)
	}
}

func TestMaxDistBands(t *testing.T) {
	cases := map[string]int{"ab": 0, "abc": 1, "abcde": 1, "abcdef": 2, "σίσ": 1}
	for tok, want := range cases {
		if got := MaxDist(tok); got != want {
			t.Errorf("MaxDist(%q) = %d, want %d", tok, got, want)
		}
	}
}

func TestAuthorLookupByIDAndLabel(t *testing.T) {
	ix := Build(testSource())
	// By id digits.
	h, ok := ix.Resolve("1", KindAuthor)
	if !ok || h.ID != 1 {
		t.Fatalf("Resolve(1) = %+v, %v", h, ok)
	}
	// By label, fuzzily: "jon smith" -> "John Smith" (1 edit on "jon").
	h, ok = ix.Resolve("jon smith", KindAuthor)
	if !ok || h.ID != 0 {
		t.Fatalf("Resolve(jon smith) = %+v, %v", h, ok)
	}
	// Unlabeled author is reachable by digits only, named by them.
	h, ok = ix.Resolve("2", KindAuthor)
	if !ok || h.ID != 2 || h.Name != "2" {
		t.Fatalf("Resolve(2) = %+v, %v", h, ok)
	}
}

func TestResolveRequiresFullCoverage(t *testing.T) {
	ix := Build(testSource())
	// "query nonsenseword" matches "query" but not the second token: no
	// full-coverage hit exists.
	if h, ok := ix.Resolve("query nonsenseword"); ok {
		t.Fatalf("partial coverage resolved to %+v", h)
	}
	// Multi-token exact phrase resolves to the phrase entry.
	h, ok := ix.Resolve("query processing")
	if !ok || h.Kind != KindPhrase || h.Path != "o/1" {
		t.Fatalf("Resolve(query processing) = %+v, %v", h, ok)
	}
}

func TestResolveKindFilter(t *testing.T) {
	ix := Build(testSource())
	h, ok := ix.Resolve("network", KindWord)
	if !ok || h.Kind != KindWord {
		t.Fatalf("word filter: %+v, %v", h, ok)
	}
	if _, ok := ix.Resolve("network", KindAuthor); ok {
		t.Fatal("no author is named network")
	}
}

func TestSearchEmptyAndLimit(t *testing.T) {
	ix := Build(testSource())
	if hits := ix.Search("", 10); hits != nil {
		t.Fatalf("empty query: %+v", hits)
	}
	if hits := ix.Search("%%%", 10); hits != nil {
		t.Fatalf("punctuation-only query: %+v", hits)
	}
	all := ix.Search("query processing", 0)
	if lim := ix.Search("query processing", 1); len(lim) != 1 || lim[0] != all[0] {
		t.Fatalf("limit=1 = %+v, want first of %+v", lim, all)
	}
}

func TestSearchDeterministicOrder(t *testing.T) {
	ix := Build(testSource())
	a := ix.Search("network learning query", 0)
	for i := 0; i < 10; i++ {
		if b := ix.Search("network learning query", 0); !reflect.DeepEqual(a, b) {
			t.Fatalf("run %d diverged:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestBuildTwiceBitIdentical(t *testing.T) {
	src := testSource()
	a, b := Build(src), Build(src)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two builds of one source differ structurally")
	}
	if a.Checksum() != b.Checksum() {
		t.Fatalf("checksums differ: %x vs %x", a.Checksum(), b.Checksum())
	}
	// A changed source must change the checksum (collision here would be a
	// canonicalization bug, not bad luck).
	src.Words[0] = "different"
	if Build(src).Checksum() == a.Checksum() {
		t.Fatal("checksum ignored a content change")
	}
}

func TestCaseFoldedMatching(t *testing.T) {
	ix := Build(Source{Words: []string{"Σίσυφος"}})
	for _, q := range []string{"ΣΊΣΥΦΟΣ", "σίσυφος"} {
		if hits := ix.Search(q, 1); len(hits) != 1 || hits[0].Name != "Σίσυφος" {
			t.Fatalf("Search(%q) = %+v", q, hits)
		}
	}
}

func TestBoundedLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		max  int
		want int
	}{
		{"kitten", "sitting", 3, 3},
		{"kitten", "sitting", 2, 3}, // reported as max+1
		{"abc", "abc", 2, 0},
		{"abc", "abd", 2, 1},
		{"", "ab", 2, 2},
		{"ab", "", 2, 2},
		{"abcdefgh", "abc", 2, 3}, // length gap beyond max: early exit
	}
	for _, c := range cases {
		got := boundedLevenshtein([]rune(c.a), c.b, c.max)
		if c.want > c.max {
			if got <= c.max {
				t.Errorf("lev(%q,%q,max=%d) = %d, want above max", c.a, c.b, c.max, got)
			}
		} else if got != c.want {
			t.Errorf("lev(%q,%q,max=%d) = %d, want %d", c.a, c.b, c.max, got, c.want)
		}
	}
}

func snapshotForSource() *store.Snapshot {
	h := core.NewHierarchy()
	h.TypeNames[1] = "author"
	n1 := h.Root.AddChild()
	n1.Phrases = []core.RankedPhrase{{Display: "query processing", Score: 3}}
	n1.Entities[1] = []core.RankedEntity{{ID: 0, Display: "John Smith", Score: 0.9}}
	n2 := h.Root.AddChild()
	n2.Phrases = []core.RankedPhrase{{Display: "network learning", Score: 2}}
	n2.Entities[1] = []core.RankedEntity{{ID: 1, Display: "Jane Doe", Score: 0.8}}
	return &store.Snapshot{
		Vocab:     []string{"query", "processing", "network"},
		Hierarchy: h,
		RolePhrases: []store.TopicPhrases{
			{Path: "o/1", Phrases: []core.RankedPhrase{{Display: "query processing", Score: 3}}},
		},
		Advisor: &store.Advisor{
			Net:  &tpfg.Network{NumAuthors: 3},
			Rank: [][]float64{{1}, {1}, {1}},
		},
	}
}

func TestSourceFromSnapshot(t *testing.T) {
	src := SourceFromSnapshot(snapshotForSource())
	if !reflect.DeepEqual(src.Words, []string{"query", "processing", "network"}) {
		t.Fatalf("Words = %v", src.Words)
	}
	// RolePhrases present: it wins over the hierarchy walk.
	if len(src.Phrases) != 1 || src.Phrases[0].Path != "o/1" {
		t.Fatalf("Phrases = %+v", src.Phrases)
	}
	want := []Author{{ID: 0, Label: "John Smith"}, {ID: 1, Label: "Jane Doe"}, {ID: 2, Label: ""}}
	if !reflect.DeepEqual(src.Authors, want) {
		t.Fatalf("Authors = %+v", src.Authors)
	}
}

func TestSourceFromSnapshotHierarchyPhrases(t *testing.T) {
	snap := snapshotForSource()
	snap.RolePhrases = nil
	src := SourceFromSnapshot(snap)
	if len(src.Phrases) != 2 {
		t.Fatalf("hierarchy walk phrases = %+v", src.Phrases)
	}
	if src.Phrases[0].Path != "o/1" || src.Phrases[1].Path != "o/2" {
		t.Fatalf("pre-order paths = %+v", src.Phrases)
	}
}

func TestSourceFromSnapshotDeterministic(t *testing.T) {
	snap := snapshotForSource()
	a := Build(SourceFromSnapshot(snap))
	for i := 0; i < 5; i++ {
		if b := Build(SourceFromSnapshot(snap)); a.Checksum() != b.Checksum() {
			t.Fatalf("run %d: snapshot extraction nondeterministic", i)
		}
	}
}

func TestSourceFromSnapshotNil(t *testing.T) {
	src := SourceFromSnapshot(nil)
	if src.Words != nil || src.Phrases != nil || src.Authors != nil {
		t.Fatalf("nil snapshot gave %+v", src)
	}
	ix := Build(src)
	if ix.Entries() != 0 || ix.Search("anything", 5) != nil {
		t.Fatal("empty index must match nothing")
	}
}

func TestFromSnapshot(t *testing.T) {
	ix := FromSnapshot(snapshotForSource())
	if h, ok := ix.Resolve("jane doe", KindAuthor); !ok || h.ID != 1 {
		t.Fatalf("FromSnapshot resolve = %+v, %v", h, ok)
	}
}
