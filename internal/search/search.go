package search

import (
	"hash/fnv"
	"sort"
	"strconv"

	"lesm/internal/core"
	"lesm/internal/store"
	"lesm/internal/textkit"
)

// Kind types an index entry: everything a snapshot knows by name falls in
// one of three namespaces.
type Kind uint8

const (
	// KindWord is a vocabulary word; ID is its vocabulary id.
	KindWord Kind = iota
	// KindPhrase is a mined phrase display; ID is its ordinal in the
	// snapshot's phrase list and Path the topic it is attached to.
	KindPhrase
	// KindAuthor is an author of the advisor network; ID is the author
	// index, Name its label when the hierarchy carries one (the id digits
	// otherwise).
	KindAuthor
)

func (k Kind) String() string {
	switch k {
	case KindWord:
		return "word"
	case KindPhrase:
		return "phrase"
	case KindAuthor:
		return "author"
	}
	return "unknown"
}

// Entry is one named thing the index can resolve.
type Entry struct {
	Kind Kind
	// Name is the display form (original case); matching happens on its
	// folded tokens.
	Name string
	// ID is the kind-scoped identifier (vocabulary id, phrase ordinal,
	// author index).
	ID int
	// Path is the owning topic path for phrases ("" otherwise).
	Path string
	// Weight is a static rank prior (phrase score; 0 for words/authors).
	Weight float64
}

// Phrase is one phrase display for Source.
type Phrase struct {
	Display string
	Path    string
	Score   float64
}

// Author is one author for Source. An empty Label indexes the author under
// its id digits only.
type Author struct {
	ID    int
	Label string
}

// Source is the name-bearing content an Index is built from. Build
// consumes the slices in order, so callers wanting deterministic indexes
// must hand over deterministically ordered sources (SourceFromSnapshot
// does: vocabulary order, snapshot phrase order, ascending author id).
type Source struct {
	Words   []string
	Phrases []Phrase
	Authors []Author
}

// SourceFromSnapshot extracts everything a snapshot knows by name:
// vocabulary words, phrase displays (the roles section when present,
// otherwise the hierarchy's attached phrase lists — the same precedence
// the phrase-search route uses), and the advisor network's authors,
// labeled through the hierarchy's author-type entities when it carries
// any (an entity type named "author" or "person"; first display per id in
// pre-order wins). The extraction order is fully determined by the
// snapshot content, so two calls over one snapshot yield identical
// sources.
func SourceFromSnapshot(snap *store.Snapshot) Source {
	var src Source
	if snap == nil {
		return src
	}
	src.Words = snap.Vocab
	if snap.RolePhrases != nil {
		for _, tp := range snap.RolePhrases {
			for _, p := range tp.Phrases {
				src.Phrases = append(src.Phrases, Phrase{Display: p.Display, Path: tp.Path, Score: p.Score})
			}
		}
	} else if snap.Hierarchy != nil {
		snap.Hierarchy.Root.Walk(func(n *core.TopicNode) {
			for _, p := range n.Phrases {
				src.Phrases = append(src.Phrases, Phrase{Display: p.Display, Path: n.Path, Score: p.Score})
			}
		})
	}

	labels := map[int]string{}
	maxID := -1
	if h := snap.Hierarchy; h != nil {
		authorTypes := AuthorTypes(h)
		h.Root.Walk(func(n *core.TopicNode) {
			for _, x := range authorTypes {
				for _, e := range n.Entities[x] {
					if _, ok := labels[e.ID]; !ok && e.Display != "" {
						labels[e.ID] = e.Display
					}
					if e.ID > maxID {
						maxID = e.ID
					}
				}
			}
		})
	}
	if snap.Advisor != nil && snap.Advisor.Net != nil && snap.Advisor.Net.NumAuthors-1 > maxID {
		maxID = snap.Advisor.Net.NumAuthors - 1
	}
	for id := 0; id <= maxID; id++ {
		src.Authors = append(src.Authors, Author{ID: id, Label: labels[id]})
	}
	return src
}

// AuthorTypes returns the hierarchy's author-like entity types — every
// TypeID whose name folds to "author" or "person" — in ascending order.
// SourceFromSnapshot labels advisor-network authors through these types,
// and the serving tier uses the same detection to place an author on the
// hierarchy nodes it loads on.
func AuthorTypes(h *core.Hierarchy) []core.TypeID {
	if h == nil {
		return nil
	}
	var out []core.TypeID
	for x, name := range h.TypeNames {
		f := textkit.Fold(name)
		if f == "author" || f == "person" {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// FromSnapshot builds the index for one snapshot: SourceFromSnapshot
// composed with Build. This is the call the serving tier's artifact build
// makes once per generation.
func FromSnapshot(snap *store.Snapshot) *Index {
	return Build(SourceFromSnapshot(snap))
}

// Index is a tokenized inverted index with edit-distance-tolerant lookup
// over one snapshot's named content. It is immutable after Build: all
// lookups are read-only, so a server can share one Index across
// concurrent requests without locking and swap whole indexes atomically
// on snapshot reload.
type Index struct {
	entries []Entry
	// terms is the sorted distinct token dictionary; postings[i] lists the
	// entries containing terms[i], ascending, deduplicated.
	terms    []string
	postings [][]int32
	// foldedName[i] is Fold(entries[i].Name), for exact full-name checks.
	foldedName []string
	// nameTokens[i] is entry i's distinct token count (min 1), the length
	// normalizer of the match score.
	nameTokens []int
	// byName maps a folded full name to the entries carrying it
	// (ascending), for O(1) exact resolution.
	byName map[string][]int32
}

// Build constructs the index. The construction is deterministic: the same
// Source always produces a bit-identical Index (test-gated by Checksum
// equality), because entries are numbered in Source order and the term
// dictionary is sorted.
func Build(src Source) *Index {
	ix := &Index{byName: map[string][]int32{}}
	terms := map[string][]int32{}
	add := func(e Entry, tokens []string) {
		id := int32(len(ix.entries))
		ix.entries = append(ix.entries, e)
		ix.foldedName = append(ix.foldedName, textkit.Fold(e.Name))
		fn := ix.foldedName[id]
		ix.byName[fn] = append(ix.byName[fn], id)
		seen := map[string]bool{}
		for _, t := range tokens {
			if t == "" || seen[t] {
				continue
			}
			seen[t] = true
			terms[t] = append(terms[t], id)
		}
		n := len(seen)
		if n == 0 {
			n = 1
		}
		ix.nameTokens = append(ix.nameTokens, n)
	}
	for w, word := range src.Words {
		add(Entry{Kind: KindWord, Name: word, ID: w}, textkit.Tokenize(word))
	}
	for i, p := range src.Phrases {
		add(Entry{Kind: KindPhrase, Name: p.Display, ID: i, Path: p.Path, Weight: p.Score}, textkit.Tokenize(p.Display))
	}
	for _, a := range src.Authors {
		name := a.Label
		digits := strconv.Itoa(a.ID)
		if name == "" {
			name = digits
		}
		toks := append(textkit.Tokenize(a.Label), digits)
		add(Entry{Kind: KindAuthor, Name: name, ID: a.ID}, toks)
	}

	ix.terms = make([]string, 0, len(terms))
	for t := range terms {
		ix.terms = append(ix.terms, t)
	}
	sort.Strings(ix.terms)
	ix.postings = make([][]int32, len(ix.terms))
	for i, t := range ix.terms {
		ix.postings[i] = terms[t] // already ascending: entries added in id order
	}
	return ix
}

// Entries returns the number of indexed entries.
func (ix *Index) Entries() int { return len(ix.entries) }

// Terms returns the size of the token dictionary.
func (ix *Index) Terms() int { return len(ix.terms) }

// Postings returns the total posting count across all terms.
func (ix *Index) Postings() int {
	n := 0
	for _, p := range ix.postings {
		n += len(p)
	}
	return n
}

// Entry returns indexed entry i.
func (ix *Index) Entry(i int) Entry { return ix.entries[i] }

// Checksum is an FNV-1a digest over the index's canonical serialization
// (entries in id order, then the sorted term dictionary with its posting
// lists). Two Builds of the same snapshot must agree bit for bit; the
// determinism tests compare this digest across builds.
func (ix *Index) Checksum() uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 64)
	num := func(v int64) {
		buf = strconv.AppendInt(buf[:0], v, 10)
		buf = append(buf, 0)
		h.Write(buf)
	}
	str := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	num(int64(len(ix.entries)))
	for i, e := range ix.entries {
		num(int64(e.Kind))
		str(e.Name)
		str(ix.foldedName[i])
		num(int64(e.ID))
		str(e.Path)
		buf = strconv.AppendFloat(buf[:0], e.Weight, 'g', -1, 64)
		buf = append(buf, 0)
		h.Write(buf)
	}
	num(int64(len(ix.terms)))
	for i, t := range ix.terms {
		str(t)
		for _, p := range ix.postings[i] {
			num(int64(p))
		}
	}
	return h.Sum64()
}

// MaxDist is the edit-distance bound fuzzy matching grants a query token:
// the "~2" pattern of fulltext retrievers, scaled down for short tokens
// where a couple of edits would match most of the dictionary — exact only
// below 3 runes, one edit up to 5, two beyond.
func MaxDist(token string) int {
	n := 0
	for range token {
		n++
	}
	switch {
	case n < 3:
		return 0
	case n <= 5:
		return 1
	default:
		return 2
	}
}

// maxExpansions caps how many dictionary terms one query token may expand
// to through fuzzy matching; expansions are taken closest-first (then
// highest document frequency, then lexicographic), so the cap only drops
// the least promising variants.
const maxExpansions = 16

// Hit is one ranked search result.
type Hit struct {
	Entry
	// Score is the match score in (0, 2]: matched-token mass averaged over
	// the query's tokens (an edit-distance-d token match contributes
	// 1/(1+d)), length-normalized by how much of the entry's own name the
	// query covers (an entry whose whole name matched outranks one that
	// merely contains the tokens), plus 1 when the folded full name equals
	// the folded query.
	Score float64
	// Distance is the summed edit distance of the matched query tokens —
	// 0 for a fully exact match.
	Distance int
	// Matched of Of query tokens found this entry.
	Matched, Of int
}

// termMatch is one dictionary term matched for a query token.
type termMatch struct {
	term int // index into ix.terms
	dist int
}

// expand finds the dictionary terms matching one query token: the exact
// term when present, else every term within MaxDist(token) edits, capped
// at maxExpansions closest-first.
func (ix *Index) expand(token string) []termMatch {
	i := sort.SearchStrings(ix.terms, token)
	if i < len(ix.terms) && ix.terms[i] == token {
		return []termMatch{{term: i, dist: 0}}
	}
	max := MaxDist(token)
	if max == 0 {
		return nil
	}
	qr := []rune(token)
	var out []termMatch
	for t, term := range ix.terms {
		d := boundedLevenshtein(qr, term, max)
		if d <= max {
			out = append(out, termMatch{term: t, dist: d})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].dist != out[b].dist {
			return out[a].dist < out[b].dist
		}
		da, db := len(ix.postings[out[a].term]), len(ix.postings[out[b].term])
		if da != db {
			return da > db // prefer the better-attested term
		}
		return ix.terms[out[a].term] < ix.terms[out[b].term]
	})
	if len(out) > maxExpansions {
		out = out[:maxExpansions]
	}
	return out
}

// Search matches q against the index and returns up to limit hits ranked
// by descending score (ties: weight, kind, name, path, id — all
// deterministic). A limit <= 0 means no cap. Results are a pure function
// of (index, q, limit).
func (ix *Index) Search(q string, limit int) []Hit {
	tokens := dedupe(textkit.Tokenize(q))
	if len(tokens) == 0 {
		return nil
	}
	type acc struct {
		score    float64
		dist     int
		matched  int
		lastTok  int
		bestTokW float64 // best weight for the current token
		bestTokD int
	}
	accs := map[int32]*acc{}
	for qi, tok := range tokens {
		for _, m := range ix.expand(tok) {
			w := 1.0 / float64(1+m.dist)
			for _, e := range ix.postings[m.term] {
				a := accs[e]
				if a == nil {
					a = &acc{lastTok: -1}
					accs[e] = a
				}
				if a.lastTok != qi {
					// Commit nothing yet; start this token's best-match slot.
					a.lastTok = qi
					a.matched++
					a.bestTokW, a.bestTokD = w, m.dist
					a.score += w
					a.dist += m.dist
				} else if w > a.bestTokW {
					// A closer term for the same query token: replace.
					a.score += w - a.bestTokW
					a.dist += m.dist - a.bestTokD
					a.bestTokW, a.bestTokD = w, m.dist
				}
			}
		}
	}
	if len(accs) == 0 {
		return nil
	}
	fq := textkit.Fold(q)
	hits := make([]Hit, 0, len(accs))
	for e, a := range accs {
		// Length normalization: scale by name coverage so a query matching
		// an entry's whole name outranks a longer entry that merely
		// contains the tokens. Half the weight is containment, half
		// coverage — containment alone still scores, so phrases carrying a
		// queried word remain findable, just below the word itself.
		cov := float64(a.matched) / float64(ix.nameTokens[e])
		h := Hit{
			Entry:    ix.entries[e],
			Score:    a.score / float64(len(tokens)) * (0.5 + 0.5*cov),
			Distance: a.dist,
			Matched:  a.matched,
			Of:       len(tokens),
		}
		if ix.foldedName[e] == fq {
			h.Score++
		}
		hits = append(hits, h)
	}
	sort.Slice(hits, func(a, b int) bool {
		ha, hb := hits[a], hits[b]
		if ha.Score != hb.Score {
			return ha.Score > hb.Score
		}
		if ha.Weight != hb.Weight {
			return ha.Weight > hb.Weight
		}
		if ha.Kind != hb.Kind {
			return ha.Kind < hb.Kind
		}
		if ha.Name != hb.Name {
			return ha.Name < hb.Name
		}
		if ha.Path != hb.Path {
			return ha.Path < hb.Path
		}
		return ha.ID < hb.ID
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// Resolve maps a free-form name to the entity it most plausibly denotes:
// the best-ranked hit that matched every token of the name (exact first,
// then ascending edit distance — so "informatoin" resolves to
// "information" and "jon smith" to "john smith"). kinds, when non-empty,
// restricts resolution to those entry kinds. The boolean reports whether
// any full-coverage hit existed.
func (ix *Index) Resolve(name string, kinds ...Kind) (Hit, bool) {
	// Exact folded-name lookup first: O(1) and immune to the expansion cap.
	if ids := ix.byName[textkit.Fold(name)]; len(ids) > 0 {
		for _, id := range ids {
			e := ix.entries[id]
			if kindAllowed(e.Kind, kinds) {
				toks := len(dedupe(textkit.Tokenize(name)))
				return Hit{Entry: e, Score: 2, Matched: toks, Of: toks}, true
			}
		}
	}
	// Among full-coverage hits, prefer one whose own name has exactly the
	// query's token count — "procesng" denotes the word "processing", not
	// a higher-weighted phrase that merely contains it. A covering hit
	// with extra name tokens is the fallback when no aligned one exists.
	var fallback Hit
	haveFallback := false
	for _, h := range ix.Search(name, 0) {
		if h.Matched != h.Of || !kindAllowed(h.Kind, kinds) {
			continue
		}
		if len(dedupe(textkit.Tokenize(h.Name))) == h.Of {
			return h, true
		}
		if !haveFallback {
			fallback, haveFallback = h, true
		}
	}
	return fallback, haveFallback
}

func kindAllowed(k Kind, kinds []Kind) bool {
	if len(kinds) == 0 {
		return true
	}
	for _, want := range kinds {
		if k == want {
			return true
		}
	}
	return false
}

func dedupe(tokens []string) []string {
	out := tokens[:0]
	seen := map[string]bool{}
	for _, t := range tokens {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// boundedLevenshtein computes the edit distance between the rune slice a
// and the (folded) string b, giving up as soon as it provably exceeds
// max: rows whose minimum passes the bound return max+1 immediately, and
// a length difference beyond max never starts the DP at all.
func boundedLevenshtein(a []rune, b string, max int) int {
	br := []rune(b)
	la, lb := len(a), len(br)
	diff := la - lb
	if diff < 0 {
		diff = -diff
	}
	if diff > max {
		return max + 1
	}
	if la == 0 {
		return lb
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == br[j-1] {
				cost = 0
			}
			v := prev[j-1] + cost
			if d := prev[j] + 1; d < v {
				v = d
			}
			if d := cur[j-1] + 1; d < v {
				v = d
			}
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if rowMin > max {
			return max + 1
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}
