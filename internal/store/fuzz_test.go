package store

import (
	"bytes"
	"testing"
)

// FuzzDecode drives arbitrary bytes through both decode paths. The
// contract under fuzzing:
//
//   - neither the copying nor the zero-copy decoder may panic, hang, or
//     allocate unboundedly — corrupt input always returns an error;
//   - the two paths agree: same accept/reject decision, and accepted
//     inputs decode to snapshots that re-encode to the same bytes;
//   - anything accepted survives Encode (round-trip closure).
//
// Seeds cover every section plus the known corruption classes the unit
// tests pin (truncation, CRC flip, version skew).
func FuzzDecode(f *testing.F) {
	full, err := Encode(sampleSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	if b, err := Encode(&Snapshot{Vocab: []string{"a", "bb", "ccc"}}); err == nil {
		f.Add(b)
	}
	if b, err := Encode(&Snapshot{Topics: sampleSnapshot().Topics}); err == nil {
		f.Add(b)
	}
	if b, err := Encode(&Snapshot{Hierarchy: sampleHierarchy()}); err == nil {
		f.Add(b)
	}
	if b, err := Encode(&Snapshot{Advisor: sampleSnapshot().Advisor}); err == nil {
		f.Add(b)
	}
	f.Add(full[:len(Magic)+6])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-5] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		zs, zerr := decode(append([]byte(nil), b...), true)
		if (err == nil) != (zerr == nil) {
			t.Fatalf("decode paths disagree: copy err=%v, zero-copy err=%v", err, zerr)
		}
		if err != nil {
			return
		}
		e1, err1 := Encode(s)
		e2, err2 := Encode(zs)
		if err1 != nil || err2 != nil {
			t.Fatalf("accepted input fails re-encode: %v / %v", err1, err2)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("decode paths produced different snapshots (%d vs %d bytes)", len(e1), len(e2))
		}
		// Shape validation must return, never panic, on anything decodable.
		_ = s.Validate()
	})
}
