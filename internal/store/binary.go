package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"unsafe"
)

// nativeZeroCopy reports whether []int / []float64 views can alias the
// little-endian encoded bytes directly: the platform must be little-endian
// and int must be 64 bits wide (the i64 wire format is then exactly int's
// in-memory layout). On other platforms the zero-copy decoder silently
// degrades to the copying path.
var nativeZeroCopy = strconv.IntSize == 64 && func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// pad8 returns the zero padding that rounds n up to a multiple of 8.
func pad8(n int) int { return (8 - n%8) % 8 }

var zeros [8]byte

// enc is an append-only little-endian encoder. All writes are infallible;
// the resulting bytes are a pure function of the written values.
type enc struct {
	buf []byte
}

func (e *enc) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

func (e *enc) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// i64 stores a signed integer as its two's-complement bit pattern.
func (e *enc) i64(v int64) { e.u64(uint64(v)) }

// f64 stores a float by its IEEE-754 bit pattern, preserving it exactly
// (including negative zero and NaN payloads).
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

// str writes a length-prefixed string padded with zero bytes to the next
// 8-byte boundary. Keeping every payload primitive a multiple of 8 bytes
// wide means an 8-aligned section payload stays 8-aligned at every ints /
// floats array inside it — the invariant the zero-copy decoder relies on.
// The header's section names use rawStr instead (the header is parsed
// field-by-field and never zero-copied).
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, zeros[:pad8(4+len(s))]...)
}

// rawStr is the unpadded v1-style string encoding, used only in the file
// header.
func (e *enc) rawStr(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) ints(v []int) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.i64(int64(x))
	}
}

func (e *enc) floats(v []float64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

// dec is the bounds-checked reader for enc's output. The first out-of-range
// read latches err and turns every later read into a zero-value no-op, so
// decoders can run straight-line and check err once at the end.
//
// With zc set, ints and floats return views that alias buf instead of heap
// copies whenever the platform allows it (nativeZeroCopy) and the array
// happens to sit 8-aligned in memory; otherwise they fall back to copying.
// Callers that set zc own the aliasing consequences: the decoded snapshot
// must be treated as strictly read-only, and buf must outlive it.
type dec struct {
	buf []byte
	off int
	err error
	zc  bool
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("store: truncated %s at offset %d", what, d.off)
	}
}

func (d *dec) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u32(what string) uint32 {
	b := d.take(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64(what string) uint64 {
	b := d.take(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) i64(what string) int64 { return int64(d.u64(what)) }

func (d *dec) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }

func (d *dec) str(what string) string {
	n := d.u32(what)
	b := d.take(int(n), what)
	d.take(pad8(4+int(n)), what) // skip alignment padding
	if d.zc && len(b) > 0 {
		// Strings are immutable and need no alignment, so a zero-copy view
		// over the (read-only) buffer is always safe while it lives.
		return unsafe.String(&b[0], len(b))
	}
	return string(b)
}

// rawStr reads the unpadded header string encoding.
func (d *dec) rawStr(what string) string {
	n := d.u32(what)
	b := d.take(int(n), what)
	return string(b)
}

// length reads a collection length and sanity-bounds it against the bytes
// that remain, so a corrupt length cannot drive a huge allocation. minSize
// is the smallest possible encoded size of one element.
func (d *dec) length(minSize int, what string) int {
	n := d.u64(what)
	if d.err != nil {
		return 0
	}
	if minSize < 1 {
		minSize = 1
	}
	if n > uint64(len(d.buf)-d.off)/uint64(minSize) {
		d.fail(what + " length")
		return 0
	}
	return int(n)
}

func (d *dec) ints(what string) []int {
	n := d.length(8, what)
	if n == 0 {
		return nil
	}
	if b := d.zcTake(n, what); b != nil {
		return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.i64(what))
	}
	return out
}

func (d *dec) floats(what string) []float64 {
	n := d.length(8, what)
	if n == 0 {
		return nil
	}
	if b := d.zcTake(n, what); b != nil {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64(what)
	}
	return out
}

// zcTake consumes n 8-byte elements and returns their backing bytes when a
// zero-copy view is possible: zc decoding enabled, platform compatible,
// and the data 8-aligned in memory. A nil return means "use the copying
// path" (which also covers the latched-error case via take).
func (d *dec) zcTake(n int, what string) []byte {
	if !d.zc || !nativeZeroCopy || d.err != nil {
		return nil
	}
	if d.off >= len(d.buf) || uintptr(unsafe.Pointer(&d.buf[d.off]))%8 != 0 {
		return nil
	}
	return d.take(n*8, what)
}
