package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// enc is an append-only little-endian encoder. All writes are infallible;
// the resulting bytes are a pure function of the written values.
type enc struct {
	buf []byte
}

func (e *enc) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

func (e *enc) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// i64 stores a signed integer as its two's-complement bit pattern.
func (e *enc) i64(v int64) { e.u64(uint64(v)) }

// f64 stores a float by its IEEE-754 bit pattern, preserving it exactly
// (including negative zero and NaN payloads).
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) ints(v []int) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.i64(int64(x))
	}
}

func (e *enc) floats(v []float64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

// dec is the bounds-checked reader for enc's output. The first out-of-range
// read latches err and turns every later read into a zero-value no-op, so
// decoders can run straight-line and check err once at the end.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("store: truncated %s at offset %d", what, d.off)
	}
}

func (d *dec) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u32(what string) uint32 {
	b := d.take(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64(what string) uint64 {
	b := d.take(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) i64(what string) int64 { return int64(d.u64(what)) }

func (d *dec) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }

func (d *dec) str(what string) string {
	n := d.u32(what)
	b := d.take(int(n), what)
	return string(b)
}

// length reads a collection length and sanity-bounds it against the bytes
// that remain, so a corrupt length cannot drive a huge allocation. minSize
// is the smallest possible encoded size of one element.
func (d *dec) length(minSize int, what string) int {
	n := d.u64(what)
	if d.err != nil {
		return 0
	}
	if minSize < 1 {
		minSize = 1
	}
	if n > uint64(len(d.buf)-d.off)/uint64(minSize) {
		d.fail(what + " length")
		return 0
	}
	return int(n)
}

func (d *dec) ints(what string) []int {
	n := d.length(8, what)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.i64(what))
	}
	return out
}

func (d *dec) floats(what string) []float64 {
	n := d.length(8, what)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64(what)
	}
	return out
}
