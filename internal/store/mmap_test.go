package store

import (
	"os"
	"reflect"
	"strings"
	"testing"
	"unsafe"
)

// TestOpenMappedRoundTrip: the mapped decode must agree value-for-value
// with the heap decode on a full snapshot.
func TestOpenMappedRoundTrip(t *testing.T) {
	path := t.TempDir() + "/model.lesm"
	s := sampleSnapshot()
	if err := Write(path, s); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	got := m.Snapshot()
	if !reflect.DeepEqual(got.Topics, s.Topics) {
		t.Fatalf("mapped topics mismatch: %+v", got.Topics)
	}
	if !reflect.DeepEqual(got.Vocab, s.Vocab) || !reflect.DeepEqual(got.Corpus, s.Corpus) {
		t.Fatal("mapped vocab/corpus mismatch")
	}
	if !reflect.DeepEqual(got.Advisor, s.Advisor) {
		t.Fatal("mapped advisor mismatch")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// Re-encoding the mapped view must reproduce the file bytes — the
	// zero-copy views carry exactly the decoded values.
	b1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("mapped snapshot re-encodes differently")
	}
}

// TestZeroCopyAliasesBuffer pins the point of the exercise: on a 64-bit
// little-endian platform, the big numeric arrays of an aligned buffer must
// alias it, not copy it.
func TestZeroCopyAliasesBuffer(t *testing.T) {
	if !nativeZeroCopy {
		t.Skip("platform cannot zero-copy")
	}
	b, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		t.Skip("test buffer landed unaligned") // make() of a large slice is 8-aligned in practice
	}
	s, err := decode(b, true)
	if err != nil {
		t.Fatal(err)
	}
	lo := uintptr(unsafe.Pointer(&b[0]))
	hi := lo + uintptr(len(b))
	inBuf := func(p unsafe.Pointer) bool { return uintptr(p) >= lo && uintptr(p) < hi }
	if !inBuf(unsafe.Pointer(&s.Topics.NKV[0][0])) {
		t.Error("NKV row copied, want aliased")
	}
	if !inBuf(unsafe.Pointer(&s.Topics.NK[0])) {
		t.Error("NK copied, want aliased")
	}
	if !inBuf(unsafe.Pointer(&s.Topics.Phi[0][0])) {
		t.Error("Phi row copied, want aliased")
	}
	if !inBuf(unsafe.Pointer(&s.Corpus.WordCounts[0])) {
		t.Error("corpus word counts copied, want aliased")
	}
	if !inBuf(unsafe.Pointer(&s.Hierarchy.Root.Phi[0][0])) {
		t.Error("hierarchy phi row copied, want aliased")
	}
	if !inBuf(unsafe.Pointer(&s.Advisor.Rank[2][0])) {
		t.Error("advisor rank row copied, want aliased")
	}
	// The heap decode of the same bytes must NOT alias.
	s2, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if inBuf(unsafe.Pointer(&s2.Topics.NKV[0][0])) {
		t.Error("plain Decode aliased the input buffer")
	}
}

// TestZeroCopyUnalignedFallsBack: the same bytes at a misaligned base
// must still decode correctly through the copying fallback.
func TestZeroCopyUnalignedFallsBack(t *testing.T) {
	b, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	shifted := make([]byte, len(b)+1)
	copy(shifted[1:], b)
	mis := shifted[1:]
	if uintptr(unsafe.Pointer(&mis[0]))%8 == 0 {
		t.Skip("shifted buffer still aligned")
	}
	s, err := decode(mis, true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Topics, want.Topics) || !reflect.DeepEqual(s.Advisor, want.Advisor) {
		t.Fatal("unaligned zero-copy decode disagrees with plain decode")
	}
}

// TestOpenMappedRejectsCorruption: the CRC gate is retained on the mmap
// path — a flipped payload byte is an open error, not a silent bad model.
func TestOpenMappedRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/model.lesm"
	if err := Write(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-5] ^= 0xff
	bad := dir + "/bad.lesm"
	if err := os.WriteFile(bad, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(bad); err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("corrupted mapped snapshot accepted: err = %v", err)
	}
	if _, err := OpenMapped(dir + "/missing.lesm"); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := os.WriteFile(dir+"/empty.lesm", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(dir + "/empty.lesm"); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("empty file accepted: err = %v", err)
	}
}

// TestMappedCloseIdempotent: double Close must be safe (the serving layer
// retires and closes mappings from more than one shutdown path).
func TestMappedCloseIdempotent(t *testing.T) {
	path := t.TempDir() + "/model.lesm"
	if err := Write(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() == 0 {
		t.Fatal("mapped size = 0")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMappedSurvivesAtomicReplace: replacing the file through store.Write
// while a mapping is open must leave the old mapping readable (it pins the
// old inode) — the property hot reload relies on.
func TestMappedSurvivesAtomicReplace(t *testing.T) {
	path := t.TempDir() + "/model.lesm"
	s1 := sampleSnapshot()
	if err := Write(path, s1); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s2 := sampleSnapshot()
	s2.Topics.NKV[0][0] = 999
	s2.Topics.NK[0] += 989
	if err := Write(path, s2); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Topics.NKV[0][0]; got != s1.Topics.NKV[0][0] {
		t.Fatalf("old mapping changed under replace: NKV[0][0] = %d", got)
	}
	m2, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Snapshot().Topics.NKV[0][0]; got != 999 {
		t.Fatalf("new mapping reads old data: NKV[0][0] = %d", got)
	}
}
