//go:build !unix

package store

import "os"

// mapFile on platforms without a usable mmap reads the file into the heap.
// The zero-copy decoder still aliases the heap buffer (large allocations
// are 8-aligned), so callers keep the no-per-row-allocation behavior; only
// the lazy-paging property is lost.
func mapFile(path string) ([]byte, func([]byte) error, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return b, nil, nil
}
