// Package store persists fitted mining artifacts — topical hierarchies,
// topic models with their fold-in sufficient statistics, per-topic ranked
// phrases, advisor rankings, and vocabulary/corpus metadata — in a
// versioned, self-describing binary snapshot format.
//
// A snapshot is the hand-off point between the batch side of the framework
// (fit once, expensively) and the serving side (internal/serve, cmd/lesmd:
// load once, answer many read-only queries). The format is deterministic:
// encoding the same Snapshot value always yields the same bytes, and
// Decode(Encode(s)) re-encodes byte-identically, so snapshots can be
// content-addressed, diffed, and cached safely.
//
// Layout (all integers little-endian):
//
//	magic "LESMSNAP" | version u32 | section count u32
//	section table: per section, name (u32 len + bytes) | offset u64 |
//	               length u64 | CRC32 (IEEE) u32
//	zero padding to an 8-byte boundary
//	section payloads, concatenated in table order, each starting 8-aligned
//
// Sections appear in a fixed canonical order ("vocab", "corpus", "topics",
// "hier", "roles", "advisor") and only when present. Every section's CRC is
// verified on load; unknown section names are skipped, so newer writers
// stay readable by older readers.
//
// Since format version 2 every payload primitive is 8 bytes wide (strings
// are zero-padded), so the numeric arrays sit 8-aligned in the file. That
// enables the zero-copy read path: OpenMapped memory-maps a snapshot
// read-only and decodes it with []int/[]float64/string views aliasing the
// mapped bytes — opening a huge model costs page tables instead of heap,
// pages fault in lazily, and the per-section CRCs are still verified at
// open. Decode the ordinary way (Read/Decode) when the caller needs a
// mutable, mapping-independent snapshot; the zero-copy decoder also falls
// back to copying per array when alignment or the platform (big-endian,
// 32-bit int) rules aliasing out. FuzzDecode drives both paths and pins
// their agreement.
package store
