// Package store persists fitted mining artifacts — topical hierarchies,
// topic models with their fold-in sufficient statistics, per-topic ranked
// phrases, advisor rankings, and vocabulary/corpus metadata — in a
// versioned, self-describing binary snapshot format.
//
// A snapshot is the hand-off point between the batch side of the framework
// (fit once, expensively) and the serving side (internal/serve, cmd/lesmd:
// load once, answer many read-only queries). The format is deterministic:
// encoding the same Snapshot value always yields the same bytes, and
// Decode(Encode(s)) re-encodes byte-identically, so snapshots can be
// content-addressed, diffed, and cached safely.
//
// Layout (all integers little-endian):
//
//	magic "LESMSNAP" | version u32 | section count u32
//	section table: per section, name (u32 len + bytes) | offset u64 |
//	               length u64 | CRC32 (IEEE) u32
//	section payloads, concatenated in table order
//
// Sections appear in a fixed canonical order ("vocab", "corpus", "topics",
// "hier", "roles", "advisor") and only when present. Every section's CRC is
// verified on load; unknown section names are skipped, so newer writers
// stay readable by older readers.
package store
