package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"lesm/internal/lda"
)

// Fit-checkpoint persistence: the LESMCKPT container for lda.Checkpoint.
//
// The layout mirrors the snapshot format (magic, version, CRC-gated
// section table, 8-aligned payloads) so the two share the binary
// primitives and the atomic write path, but it is a separate container
// with its own magic: a checkpoint is transient fit state, not a
// servable artifact, and neither reader should ever accept the other's
// files. Unlike the snapshot decoder — where any subset of sections is
// a valid (sparse) snapshot — a checkpoint is all-or-nothing: the meta
// and assignment sections are required, so a corrupted section *name*
// (which the per-section CRC cannot see, as the table itself is
// unchecksummed) demotes the file to "rejected", never to a silently
// emptier checkpoint.

// CkptMagic identifies a lesm fit-checkpoint file.
const CkptMagic = "LESMCKPT"

// CkptVersion is the current checkpoint format version; decode accepts
// exactly this version.
//
//	1: meta (fingerprint + sweep + MH scalars), z (assignments), and an
//	   optional mh (MH alias-source counts) section (PR 9).
const CkptVersion = 1

// Checkpoint section names, in canonical file order.
const (
	CkptSecMeta = "ckmeta"
	CkptSecZ    = "ckz"
	CkptSecMH   = "ckmh"
)

// EncodeCheckpoint serializes a checkpoint. The output is a pure
// function of the checkpoint value.
func EncodeCheckpoint(cp *lda.Checkpoint) ([]byte, error) {
	if cp == nil {
		return nil, errors.New("store: nil checkpoint")
	}
	names := []string{CkptSecMeta, CkptSecZ}
	var payloads [][]byte
	{
		var e enc
		encodeCkptMeta(&e, cp)
		payloads = append(payloads, e.buf)
	}
	{
		var e enc
		encodeIntTable(&e, cp.Z)
		payloads = append(payloads, e.buf)
	}
	if cp.MHSourceKV != nil {
		var e enc
		encodeIntTable(&e, cp.MHSourceKV)
		names = append(names, CkptSecMH)
		payloads = append(payloads, e.buf)
	}

	headerSize := len(CkptMagic) + 4 + 4
	for _, name := range names {
		headerSize += 4 + len(name) + 8 + 8 + 4
	}
	var e enc
	e.buf = append(e.buf, CkptMagic...)
	e.u32(CkptVersion)
	e.u32(uint32(len(names)))
	offset := uint64(headerSize + pad8(headerSize))
	for i, name := range names {
		e.rawStr(name)
		e.u64(offset)
		e.u64(uint64(len(payloads[i])))
		e.u32(crc32.ChecksumIEEE(payloads[i]))
		offset += uint64(len(payloads[i]) + pad8(len(payloads[i])))
	}
	e.buf = append(e.buf, zeros[:pad8(len(e.buf))]...)
	for _, p := range payloads {
		e.buf = append(e.buf, p...)
		e.buf = append(e.buf, zeros[:pad8(len(p))]...)
	}
	return e.buf, nil
}

// DecodeCheckpoint parses, CRC-verifies and shape-validates a
// checkpoint. Rejection is loud and total: any truncation, checksum
// mismatch, missing required section, or out-of-range value fails the
// whole load — there is no partially-decoded checkpoint.
func DecodeCheckpoint(b []byte) (*lda.Checkpoint, error) {
	if len(b) < len(CkptMagic)+8 || string(b[:len(CkptMagic)]) != CkptMagic {
		return nil, errors.New("store: not a lesm checkpoint (bad magic)")
	}
	d := &dec{buf: b, off: len(CkptMagic)}
	if v := d.u32("version"); v != CkptVersion {
		return nil, fmt.Errorf("store: unsupported checkpoint version %d (want %d)", v, CkptVersion)
	}
	count := d.u32("section count")
	if count > uint32((len(b)-d.off)/24) {
		return nil, fmt.Errorf("store: corrupt checkpoint section count %d", count)
	}
	cp := &lda.Checkpoint{}
	seen := map[string]bool{}
	for i := uint32(0); i < count; i++ {
		name := d.rawStr("section name")
		off := d.u64("section offset")
		length := d.u64("section length")
		crc := d.u32("section crc")
		if d.err != nil {
			return nil, d.err
		}
		if off > uint64(len(b)) || length > uint64(len(b))-off {
			return nil, fmt.Errorf("store: checkpoint section %q out of bounds", name)
		}
		payload := b[off : off+length]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, fmt.Errorf("store: checkpoint section %q CRC mismatch (file %08x, computed %08x)", name, crc, got)
		}
		if seen[name] {
			return nil, fmt.Errorf("store: duplicate checkpoint section %q", name)
		}
		seen[name] = true
		pd := &dec{buf: payload}
		switch name {
		case CkptSecMeta:
			decodeCkptMeta(pd, cp)
		case CkptSecZ:
			cp.Z = decodeIntTable(pd, "checkpoint z")
		case CkptSecMH:
			cp.MHSourceKV = decodeIntTable(pd, "checkpoint mh source")
		default:
			continue // unknown section: forward compatibility
		}
		if pd.err != nil {
			return nil, fmt.Errorf("store: checkpoint section %q: %w", name, pd.err)
		}
	}
	if !seen[CkptSecMeta] || !seen[CkptSecZ] {
		return nil, fmt.Errorf("store: checkpoint missing required sections (have meta=%t, z=%t)", seen[CkptSecMeta], seen[CkptSecZ])
	}
	if err := validateCheckpoint(cp); err != nil {
		return nil, err
	}
	return cp, nil
}

// validateCheckpoint enforces the internal consistency a checkpoint
// captured by a fit always has, so a CRC-valid but semantically
// corrupted file (or a fuzzer-built one) cannot reach the resume path
// with out-of-range indices. The resume path re-checks everything
// against its own run; this guards the decoded value itself.
func validateCheckpoint(cp *lda.Checkpoint) error {
	fp := cp.Fingerprint
	if fp.K < 1 {
		return fmt.Errorf("store: checkpoint K = %d, need >= 1", fp.K)
	}
	if fp.V < 1 {
		return fmt.Errorf("store: checkpoint V = %d, need >= 1", fp.V)
	}
	kTotal := fp.K
	if fp.Background {
		kTotal++
	}
	if cp.Sweep < 1 || cp.Sweep > fp.Iters {
		return fmt.Errorf("store: checkpoint sweep %d outside [1, %d]", cp.Sweep, fp.Iters)
	}
	if len(cp.Z) != fp.Docs {
		return fmt.Errorf("store: checkpoint has %d documents, fingerprint says %d", len(cp.Z), fp.Docs)
	}
	for di, zd := range cp.Z {
		for i, k := range zd {
			if k < 0 || k >= kTotal {
				return fmt.Errorf("store: checkpoint doc %d slot %d: topic %d outside [0, %d)", di, i, k, kTotal)
			}
		}
	}
	if cp.AliasRebuilds < 0 || cp.MHStale < 0 {
		return fmt.Errorf("store: checkpoint negative MH counters (rebuilds %d, stale %d)", cp.AliasRebuilds, cp.MHStale)
	}
	// The MH section is optional in the container but not independent of
	// the meta: an MH fit's checkpoint always carries its alias source
	// counts, and no other core's ever does. Without this cross-check, a
	// corrupted section *name* (invisible to the payload CRCs) would
	// demote an MH checkpoint to a silently emptier file instead of a
	// rejected one.
	if isMH := fp.Sampler == lda.SamplerMH; isMH != (cp.MHSourceKV != nil) {
		return fmt.Errorf("store: checkpoint MH section presence (%t) inconsistent with sampler %q", cp.MHSourceKV != nil, fp.Sampler)
	}
	if cp.MHSourceKV != nil {
		if len(cp.MHSourceKV) != kTotal {
			return fmt.Errorf("store: checkpoint MH source table has %d topics, fingerprint says %d", len(cp.MHSourceKV), kTotal)
		}
		for k, row := range cp.MHSourceKV {
			if len(row) != fp.V {
				return fmt.Errorf("store: checkpoint MH source topic %d has %d words, vocabulary is %d", k, len(row), fp.V)
			}
			for w, c := range row {
				if c < 0 {
					return fmt.Errorf("store: checkpoint MH source count [%d][%d] = %d, need >= 0", k, w, c)
				}
			}
		}
	}
	return nil
}

// WriteCheckpoint persists a checkpoint at path with the same
// atomic-replace discipline as Write: any failure leaves the previous
// file (if one existed) intact and loadable.
func WriteCheckpoint(path string, cp *lda.Checkpoint) error {
	b, err := EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	return writeAtomic(path, b)
}

// ReadCheckpoint loads and validates the checkpoint at path.
func ReadCheckpoint(path string) (*lda.Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(b)
}

// --- checkpoint sections ---

func encodeCkptMeta(e *enc, cp *lda.Checkpoint) {
	fp := cp.Fingerprint
	e.str(fp.Engine)
	e.str(string(fp.Sampler))
	e.i64(int64(fp.K))
	e.i64(int64(fp.V))
	e.f64(fp.Alpha)
	e.f64(fp.Beta)
	e.f64(fp.BGWeight)
	bg := uint64(0)
	if fp.Background {
		bg = 1
	}
	e.u64(bg)
	e.i64(int64(fp.Iters))
	e.i64(fp.Seed)
	e.i64(int64(fp.AliasRefresh))
	e.i64(int64(fp.Docs))
	e.i64(fp.Tokens)
	e.u64(fp.CorpusHash)
	e.i64(int64(cp.Sweep))
	e.i64(int64(cp.AliasRebuilds))
	e.i64(int64(cp.MHStale))
}

func decodeCkptMeta(d *dec, cp *lda.Checkpoint) {
	fp := &cp.Fingerprint
	fp.Engine = d.str("meta engine")
	fp.Sampler = lda.Sampler(d.str("meta sampler"))
	fp.K = int(d.i64("meta K"))
	fp.V = int(d.i64("meta V"))
	fp.Alpha = d.f64("meta alpha")
	fp.Beta = d.f64("meta beta")
	fp.BGWeight = d.f64("meta bgWeight")
	fp.Background = d.u64("meta background") != 0
	fp.Iters = int(d.i64("meta iters"))
	fp.Seed = d.i64("meta seed")
	fp.AliasRefresh = int(d.i64("meta aliasRefresh"))
	fp.Docs = int(d.i64("meta docs"))
	fp.Tokens = d.i64("meta tokens")
	fp.CorpusHash = d.u64("meta corpusHash")
	cp.Sweep = int(d.i64("meta sweep"))
	cp.AliasRebuilds = int(d.i64("meta aliasRebuilds"))
	cp.MHStale = int(d.i64("meta mhStale"))
	if d.off != len(d.buf) && d.err == nil {
		d.fail("meta trailing bytes")
	}
}

// encodeIntTable stores a ragged [][]int (Z assignments, count tables).
func encodeIntTable(e *enc, t [][]int) {
	e.u64(uint64(len(t)))
	for _, row := range t {
		e.ints(row)
	}
}

func decodeIntTable(d *dec, what string) [][]int {
	n := d.length(8, what)
	out := make([][]int, n)
	for i := range out {
		row := d.ints(what + " row")
		if row == nil {
			// lda's init pass and restore both hand every document a
			// non-nil (possibly empty) row; preserve that so resumed and
			// fresh fits deep-compare equal even on empty documents.
			row = []int{}
		}
		out[i] = row
	}
	return out
}
