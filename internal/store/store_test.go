package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"reflect"
	"strings"
	"testing"

	"lesm/internal/core"
	"lesm/internal/tpfg"
)

// sampleHierarchy builds a small but fully-populated hierarchy: phi over
// two types, ranked phrases and entities, three levels.
func sampleHierarchy() *core.Hierarchy {
	h := core.NewHierarchy()
	h.TypeNames[1] = "author"
	h.Root.Phi = map[core.TypeID][]float64{core.TermType: {0.5, 0.3, 0.2}, 1: {0.9, 0.1}}
	a := h.Root.AddChild()
	b := h.Root.AddChild()
	a.Rho, b.Rho = 0.6, 0.4
	a.Phi = map[core.TypeID][]float64{core.TermType: {0.7, 0.2, 0.1}}
	b.Phi = map[core.TypeID][]float64{core.TermType: {0.1, 0.1, 0.8}}
	a.Phrases = []core.RankedPhrase{
		{Words: []int{0, 1}, Display: "query processing", Score: 2.5},
		{Words: []int{2}, Display: "index", Score: 1.25},
	}
	a.Entities = map[core.TypeID][]core.RankedEntity{
		1: {{ID: 3, Display: "jiawei han", Score: 0.8}, {ID: 5, Display: "chi wang", Score: 0.7}},
	}
	aa := a.AddChild()
	aa.Rho = 1
	aa.Phi = map[core.TypeID][]float64{core.TermType: {1. / 3, 1. / 3, 1. / 3}}
	return h
}

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Vocab:  []string{"query", "processing", "index"},
		Corpus: &CorpusMeta{NumDocs: 12, TotalTokens: 48, WordCounts: []int{20, 18, 10}},
		Topics: &Topics{
			K: 2, V: 3,
			Weight: []float64{0.6, 0.4},
			Phi:    [][]float64{{0.5, 0.25, 0.25}, {0.1, 0.2, 0.7}},
			Alpha:  0.5, Beta: 0.01,
			NKV: [][]int{{10, 5, 5}, {2, 4, 14}},
			NK:  []int{20, 20},
		},
		Hierarchy: sampleHierarchy(),
		RolePhrases: []TopicPhrases{
			{Path: "o", Phrases: []core.RankedPhrase{{Words: []int{0}, Display: "query", Score: 1}}},
			{Path: "o/1", Phrases: []core.RankedPhrase{{Words: []int{0, 1}, Display: "query processing", Score: 3}}},
		},
		Advisor: &Advisor{
			Net: &tpfg.Network{
				NumAuthors: 3,
				First:      []int{1999, 2004, 2005},
				Cands: [][]tpfg.Candidate{
					nil,
					{{Advisor: 0, Start: 2004, End: 2008, Local: 0.7}},
					{{Advisor: 0, Start: 2005, End: 2009, Local: 0.4}, {Advisor: 1, Start: 2006, End: 2009, Local: 0.3}},
				},
			},
			Rank: [][]float64{{1}, {0.3, 0.7}, {0.2, 0.5, 0.3}},
		},
	}
}

// TestRoundTripByteIdentical is the format's core guarantee: for every
// artifact type, alone and combined, Encode→Decode→Encode is byte-identical
// (the property-style pass over all 2^6-1 non-empty section subsets keeps
// any one section's round-trip honest even when the others are absent).
func TestRoundTripByteIdentical(t *testing.T) {
	full := sampleSnapshot()
	for mask := 1; mask < 1<<6; mask++ {
		s := &Snapshot{}
		if mask&1 != 0 {
			s.Vocab = full.Vocab
		}
		if mask&2 != 0 {
			s.Corpus = full.Corpus
		}
		if mask&4 != 0 {
			s.Topics = full.Topics
		}
		if mask&8 != 0 {
			s.Hierarchy = full.Hierarchy
		}
		if mask&16 != 0 {
			s.RolePhrases = full.RolePhrases
		}
		if mask&32 != 0 {
			s.Advisor = full.Advisor
		}
		b1, err := Encode(s)
		if err != nil {
			t.Fatalf("mask %b: encode: %v", mask, err)
		}
		got, err := Decode(b1)
		if err != nil {
			t.Fatalf("mask %b: decode: %v", mask, err)
		}
		b2, err := Encode(got)
		if err != nil {
			t.Fatalf("mask %b: re-encode: %v", mask, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("mask %b: re-encoded snapshot differs (%d vs %d bytes)", mask, len(b1), len(b2))
		}
	}
}

func TestRoundTripDeepEqual(t *testing.T) {
	s := sampleSnapshot()
	b, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Vocab, s.Vocab) {
		t.Errorf("vocab mismatch: %v", got.Vocab)
	}
	if !reflect.DeepEqual(got.Corpus, s.Corpus) {
		t.Errorf("corpus mismatch: %+v", got.Corpus)
	}
	if !reflect.DeepEqual(got.Topics, s.Topics) {
		t.Errorf("topics mismatch: %+v", got.Topics)
	}
	if !reflect.DeepEqual(got.RolePhrases, s.RolePhrases) {
		t.Errorf("role phrases mismatch: %+v", got.RolePhrases)
	}
	if !reflect.DeepEqual(got.Advisor, s.Advisor) {
		t.Errorf("advisor mismatch: %+v", got.Advisor)
	}
	// The hierarchy holds unexported parent pointers; compare structure and
	// payloads field by field instead of DeepEqual on the whole tree.
	var want, have []*core.TopicNode
	s.Hierarchy.Root.Walk(func(n *core.TopicNode) { want = append(want, n) })
	got.Hierarchy.Root.Walk(func(n *core.TopicNode) { have = append(have, n) })
	if len(want) != len(have) {
		t.Fatalf("hierarchy size %d != %d", len(have), len(want))
	}
	if !reflect.DeepEqual(got.Hierarchy.TypeNames, s.Hierarchy.TypeNames) {
		t.Errorf("type names mismatch: %v", got.Hierarchy.TypeNames)
	}
	for i := range want {
		w, h := want[i], have[i]
		if w.Path != h.Path || w.Level != h.Level || w.Rho != h.Rho {
			t.Errorf("node %d header mismatch: %q/%d/%v vs %q/%d/%v", i, h.Path, h.Level, h.Rho, w.Path, w.Level, w.Rho)
		}
		if !reflect.DeepEqual(w.Phi, h.Phi) {
			t.Errorf("node %q phi mismatch", w.Path)
		}
		if !reflect.DeepEqual(w.Phrases, h.Phrases) {
			t.Errorf("node %q phrases mismatch", w.Path)
		}
		if !reflect.DeepEqual(w.Entities, h.Entities) && !(len(w.Entities) == 0 && len(h.Entities) == 0) {
			t.Errorf("node %q entities mismatch", w.Path)
		}
		if (h.Parent() == nil) != (w.Parent() == nil) {
			t.Errorf("node %q parent link mismatch", w.Path)
		}
	}
}

// TestFloatBitPatternsSurvive pins the exact-bits contract: negative zero
// and extreme values must round-trip unchanged.
func TestFloatBitPatternsSurvive(t *testing.T) {
	s := &Snapshot{Topics: &Topics{
		K: 1, V: 4,
		Phi:    [][]float64{{math.Copysign(0, -1), math.SmallestNonzeroFloat64, math.MaxFloat64, 1e-300}},
		Weight: []float64{1},
	}}
	b, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Topics.Phi[0] {
		if math.Float64bits(got.Topics.Phi[0][i]) != math.Float64bits(v) {
			t.Errorf("phi[%d] bits changed: %x vs %x", i, math.Float64bits(got.Topics.Phi[0][i]), math.Float64bits(v))
		}
	}
}

func TestCorruptedCRCRejected(t *testing.T) {
	b, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the last section's payload (well past the header).
	bad := append([]byte(nil), b...)
	bad[len(bad)-5] ^= 0xff
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("corrupted payload accepted: err = %v", err)
	}
}

func TestBadMagicAndVersionRejected(t *testing.T) {
	if _, err := Decode([]byte("NOTASNAPxxxxxxxx")); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic accepted: err = %v", err)
	}
	b, err := Encode(&Snapshot{Vocab: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), b...)
	bad[len(Magic)] = 99 // version field
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted: err = %v", err)
	}
}

func TestCorruptSectionCountRejected(t *testing.T) {
	b, err := Encode(&Snapshot{Vocab: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	// A huge section count in an otherwise tiny file must be rejected
	// up front, not drive a giant table pre-allocation.
	bad := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(bad[len(Magic)+4:], 0xFFFFFFFF)
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "section count") {
		t.Fatalf("corrupt section count accepted: err = %v", err)
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	b, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(Magic) + 2, len(b) / 2, len(b) - 1} {
		if _, err := Decode(b[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestDeepHierarchyChainRejected(t *testing.T) {
	// A CRC-valid chain of single-child nodes past the depth bound must be
	// a decode error, not a process-killing stack overflow. The payload is
	// hand-crafted (an attacker's file, ~45 bytes per level), not built
	// through AddChild, whose growing path strings would make the fixture
	// quadratic.
	var p enc
	p.u64(0) // no type names
	node := func(children uint64) {
		p.str("o") // path
		p.i64(0)   // level
		p.f64(1)   // rho
		p.u64(0)   // phi types
		p.u64(0)   // phrases
		p.u64(0)   // entity types
		p.u64(children)
	}
	for i := 0; i < maxHierDepth+2; i++ {
		node(1)
	}
	node(0)

	var e enc
	e.buf = append(e.buf, Magic...)
	e.u32(Version)
	e.u32(1)
	e.rawStr(SecHier)
	headerSize := len(Magic) + 4 + 4 + (4 + len(SecHier) + 8 + 8 + 4)
	e.u64(uint64(headerSize))
	e.u64(uint64(len(p.buf)))
	e.u32(crc32.ChecksumIEEE(p.buf))
	e.buf = append(e.buf, p.buf...)

	if _, err := Decode(e.buf); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("depth bomb accepted: err = %v", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	path := t.TempDir() + "/model.lesm"
	s := sampleSnapshot()
	if err := Write(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Topics, s.Topics) {
		t.Fatal("file round-trip lost topics")
	}
	want := []string{SecVocab, SecCorpus, SecTopics, SecHier, SecRoles, SecAdvisor}
	if !reflect.DeepEqual(got.Sections(), want) {
		t.Fatalf("sections = %v", got.Sections())
	}
}
