package store

import "fmt"

// Shape validation. The CRC protects byte integrity, not semantic
// consistency: a well-formed file can still encode an advisor section whose
// rank rows disagree with its candidate lists, or topic count tables that
// disagree with Phi. Consumers that index across fields (serve.New,
// lesm.Load) validate up front so a malformed snapshot is a load error,
// never a panic at query time.

// Validate checks the topic section's cross-field shape invariants: every
// Phi row (and NKV row) spans the vocabulary V, and the count tables are
// either both absent or consistent with each other.
func (t *Topics) Validate() error {
	for k, row := range t.Phi {
		if len(row) != t.V {
			return fmt.Errorf("store: topics phi row %d has %d entries, V = %d", k, len(row), t.V)
		}
	}
	if (t.NKV == nil) != (t.NK == nil) {
		return fmt.Errorf("store: topics count tables half-present (NKV %v, NK %v)", t.NKV != nil, t.NK != nil)
	}
	if t.NKV != nil {
		if len(t.NKV) != len(t.NK) {
			return fmt.Errorf("store: topics NKV has %d rows, NK has %d", len(t.NKV), len(t.NK))
		}
		for k, row := range t.NKV {
			if len(row) != t.V {
				return fmt.Errorf("store: topics NKV row %d has %d entries, V = %d", k, len(row), t.V)
			}
		}
	}
	return nil
}

// Validate checks the advisor section's invariants: one candidate list and
// one rank vector per author, each rank vector covering the virtual
// no-advisor node plus every candidate, and candidate ids in range.
func (a *Advisor) Validate() error {
	if a.Net == nil {
		return fmt.Errorf("store: advisor section has no network")
	}
	n := a.Net.NumAuthors
	if n < 0 {
		return fmt.Errorf("store: advisor NumAuthors = %d", n)
	}
	if len(a.Net.Cands) != n {
		return fmt.Errorf("store: advisor has %d candidate lists for %d authors", len(a.Net.Cands), n)
	}
	if len(a.Rank) != n {
		return fmt.Errorf("store: advisor has %d rank vectors for %d authors", len(a.Rank), n)
	}
	for i := 0; i < n; i++ {
		if want := len(a.Net.Cands[i]) + 1; len(a.Rank[i]) != want {
			return fmt.Errorf("store: advisor rank[%d] has %d entries, want %d (candidates + no-advisor)", i, len(a.Rank[i]), want)
		}
		for _, c := range a.Net.Cands[i] {
			if c.Advisor < 0 || c.Advisor >= n {
				return fmt.Errorf("store: advisor candidate %d of author %d out of range [0, %d)", c.Advisor, i, n)
			}
		}
	}
	return nil
}

// Validate checks every present section's shape invariants.
func (s *Snapshot) Validate() error {
	if s.Topics != nil {
		if err := s.Topics.Validate(); err != nil {
			return err
		}
	}
	if s.Advisor != nil {
		if err := s.Advisor.Validate(); err != nil {
			return err
		}
	}
	return nil
}
