package store

import (
	"fmt"
	"testing"
)

// benchSnapshot builds a serving-sized snapshot: v-word vocabulary, k
// topics with count tables, and a 2-level hierarchy with phrases.
func benchSnapshot(k, v int) *Snapshot {
	vocab := make([]string, v)
	counts := make([]int, v)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("word%06d", i)
		counts[i] = 1 + i%37
	}
	tp := &Topics{K: k, V: v, Alpha: 0.5, Beta: 0.01,
		Weight: make([]float64, k), Phi: make([][]float64, k),
		NKV: make([][]int, k), NK: make([]int, k)}
	for t := 0; t < k; t++ {
		tp.Weight[t] = 1 / float64(k)
		tp.Phi[t] = make([]float64, v)
		tp.NKV[t] = make([]int, v)
		for w := 0; w < v; w++ {
			tp.Phi[t][w] = 1 / float64(v)
			tp.NKV[t][w] = (t*v + w) % 11
			tp.NK[t] += tp.NKV[t][w]
		}
	}
	h := sampleHierarchy()
	return &Snapshot{Vocab: vocab, Corpus: &CorpusMeta{NumDocs: 10000, TotalTokens: 90000, WordCounts: counts},
		Topics: tp, Hierarchy: h}
}

func BenchmarkEncode(b *testing.B) {
	s := benchSnapshot(20, 20000)
	buf, err := Encode(s)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	buf, err := Encode(benchSnapshot(20, 20000))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBigFile writes a big-section snapshot (the K x V topics tables
// dominate) and returns its path — the fixture the decode-allocation
// comparison runs over.
func benchBigFile(b *testing.B, k, v int) string {
	b.Helper()
	path := b.TempDir() + "/bench.lesm"
	if err := Write(path, benchSnapshot(k, v)); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkReadBigSections is the heap baseline: read + copying decode.
// Compare allocs/op and B/op against BenchmarkOpenMappedBigSections.
func BenchmarkReadBigSections(b *testing.B) {
	path := benchBigFile(b, 20, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenMappedBigSections is the zero-copy path: the topic tables
// are served straight from mapped bytes, so per-row backing arrays never
// hit the heap.
func BenchmarkOpenMappedBigSections(b *testing.B) {
	path := benchBigFile(b, 20, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := OpenMapped(path)
		if err != nil {
			b.Fatal(err)
		}
		if m.Snapshot().Topics.NKV[3][7] < 0 {
			b.Fatal("bogus decode")
		}
		m.Close()
	}
}
