package store

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
)

// Fault-injection seam for the atomic write path. Production code never
// sets fault; fault_test.go points it at a faultInjector to prove the
// crash-safety invariant: no injected failure — short write, ENOSPC,
// fsync failure, crash between temp write and rename, rename failure,
// directory-sync failure — ever leaves an accepted-but-corrupt file at
// the destination. Either the previous file survives byte-for-byte, or
// the new file landed completely; a load sees one of the two, never a
// hybrid.
var fault *faultInjector

// faultInjector selects which step of writeAtomic fails. The zero value
// injects nothing; every failure mode is an explicit flag so a
// forgotten field cannot silently arm one.
type faultInjector struct {
	// writeErr, when non-nil, fails the temp-file write immediately with
	// this error (e.g. syscall.ENOSPC) before any byte lands.
	writeErr error
	// tornWrite writes only the first tornWriteAt bytes of the payload
	// and then fails — a mid-write ENOSPC or crash leaving a torn temp
	// file behind the error.
	tornWrite   bool
	tornWriteAt int
	// failSync fails the temp file's fsync (data possibly still in page
	// cache, never to be renamed in).
	failSync bool
	// crashBeforeRename simulates dying between the durable temp write
	// and the rename: writeAtomic returns errSimulatedCrash *without*
	// removing the temp file, exactly the debris a real crash leaves.
	crashBeforeRename bool
	// failRename fails the rename itself.
	failRename bool
	// failDirSync fails the parent-directory fsync after the rename (the
	// rename has happened; only its durability is in question).
	failDirSync bool
}

var (
	errSimulatedCrash = errors.New("store: simulated crash before rename")
	errInjectedSync   = errors.New("store: injected fsync failure")
	errInjectedRename = errors.New("store: injected rename failure")
	errInjectedDirOp  = errors.New("store: injected directory fsync failure")
)

// writeAtomic publishes b at path with the atomic-replace discipline
// every persisted artifact shares: unique temp file in the destination
// directory, write, fsync, rename, parent-directory fsync. The fsync
// before the rename keeps a power loss from persisting the rename ahead
// of the data (a torn file at the final path, the exact failure the
// temp-file dance rules out); the directory fsync after it keeps the
// rename itself from being lost, which would silently resurrect the
// previous file.
func writeAtomic(path string, b []byte) error {
	// A unique temp name (not a fixed path+".tmp") keeps concurrent writers
	// to the same destination from interleaving into one temp file; the
	// racing renames then stay last-writer-wins with each candidate intact.
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	werr := injectedWrite(f, b)
	if werr == nil {
		werr = injectedSync(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if fault != nil && fault.crashBeforeRename {
		// A real crash leaves the temp file on disk; so does the
		// simulated one. Stray *.tmp* files are inert — nothing loads
		// them — and the next successful write replaces the destination
		// regardless.
		return errSimulatedCrash
	}
	if fault != nil && fault.failRename {
		os.Remove(tmp)
		return errInjectedRename
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// injectedWrite is the temp-file write with the short-write/ENOSPC
// failpoints applied.
func injectedWrite(f *os.File, b []byte) error {
	if fault != nil {
		if fault.writeErr != nil {
			return fault.writeErr
		}
		if fault.tornWrite {
			n := fault.tornWriteAt
			if n > len(b) {
				n = len(b)
			}
			if _, err := f.Write(b[:n]); err != nil {
				return err
			}
			return syscall.ENOSPC
		}
	}
	_, err := f.Write(b)
	return err
}

// injectedSync is the temp-file fsync with its failpoint applied.
func injectedSync(f *os.File) error {
	if fault != nil && fault.failSync {
		return errInjectedSync
	}
	return f.Sync()
}

// syncDir fsyncs a directory, making a completed rename durable. Some
// filesystems refuse to fsync directory handles (EINVAL/ENOTSUP); that
// is tolerated — on those systems this is best-effort, and the rename
// has already happened either way.
func syncDir(dir string) error {
	if fault != nil && fault.failDirSync {
		return errInjectedDirOp
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil && (errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP)) {
		return nil
	}
	return serr
}
