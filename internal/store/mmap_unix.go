//go:build unix

package store

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mapFile maps path read-only. The returned cleanup unmaps; it is nil when
// there is nothing to release (empty file).
func mapFile(path string) ([]byte, func([]byte) error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() // the mapping survives the fd
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		// mmap rejects zero-length maps; an empty file is simply not a
		// snapshot, which decode reports as a bad magic.
		return nil, nil, nil
	}
	if size < 0 || size > math.MaxInt {
		return nil, nil, fmt.Errorf("store: %s: size %d not mappable", path, size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return b, syscall.Munmap, nil
}
