package store

import (
	"bytes"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lesm/internal/lda"
)

// sampleCheckpoint builds a fully-populated mid-fit checkpoint (MH core,
// alias source counts, an empty document).
func sampleCheckpoint(withMH bool) *lda.Checkpoint {
	cp := &lda.Checkpoint{
		Fingerprint: lda.Fingerprint{
			Engine: "lda", Sampler: lda.SamplerSparse, K: 2, V: 3,
			Alpha: 0.5, Beta: 0.01, Iters: 20, Seed: 42,
			AliasRefresh: 3, Docs: 3, Tokens: 5, CorpusHash: 0xfeedbeefcafe,
		},
		Sweep: 14,
		Z:     [][]int{{0, 1, 1}, {1, 0}, {}},
	}
	if withMH {
		cp.Fingerprint.Sampler = lda.SamplerMH
		cp.AliasRebuilds = 5
		cp.MHStale = 2
		cp.MHSourceKV = [][]int{{1, 2, 0}, {0, 1, 1}}
	}
	return cp
}

func TestCheckpointRoundTrip(t *testing.T) {
	for _, withMH := range []bool{false, true} {
		cp := sampleCheckpoint(withMH)
		b, err := EncodeCheckpoint(cp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeCheckpoint(b)
		if err != nil {
			t.Fatalf("withMH=%t: %v", withMH, err)
		}
		if !reflect.DeepEqual(cp, got) {
			t.Fatalf("withMH=%t: round trip drift:\nwant %+v\ngot  %+v", withMH, cp, got)
		}
		b2, err := EncodeCheckpoint(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("withMH=%t: re-encode not byte-identical", withMH)
		}
	}
}

// TestCheckpointTruncationRejected cuts the file at EVERY prefix length:
// no truncation may be accepted (a torn write must never load).
func TestCheckpointTruncationRejected(t *testing.T) {
	b, err := EncodeCheckpoint(sampleCheckpoint(true))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := DecodeCheckpoint(b[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(b))
		}
	}
}

// TestCheckpointBitFlips flips every byte of the file, one at a time.
// Each flip must either be rejected or decode to exactly the original
// checkpoint (flips in alignment padding are invisible by design —
// padding carries no data).
func TestCheckpointBitFlips(t *testing.T) {
	cp := sampleCheckpoint(true)
	b, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for i := range b {
		bad := append([]byte(nil), b...)
		bad[i] ^= 0xff
		got, err := DecodeCheckpoint(bad)
		if err != nil {
			continue
		}
		accepted++
		if !reflect.DeepEqual(cp, got) {
			t.Fatalf("flip at byte %d accepted AND decoded to a different checkpoint", i)
		}
	}
	// Sanity: the loop exercised real rejections, not a vacuous decoder.
	if accepted >= len(b)/2 {
		t.Fatalf("%d/%d single-byte flips accepted — corruption detection is not working", accepted, len(b))
	}
}

func TestCheckpointMagicAndVersionRejected(t *testing.T) {
	if _, err := DecodeCheckpoint([]byte("LESMSNAPxxxxxxxx")); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("snapshot magic accepted by checkpoint decoder: err = %v", err)
	}
	b, err := EncodeCheckpoint(sampleCheckpoint(false))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), b...)
	bad[len(CkptMagic)] = 99
	if _, err := DecodeCheckpoint(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted: err = %v", err)
	}
	// And the snapshot reader must likewise refuse a checkpoint file.
	if _, err := Decode(b); err == nil {
		t.Fatal("checkpoint file accepted by the snapshot decoder")
	}
}

// TestCheckpointSectionNameFlip: the section table itself is not
// checksummed, so a corrupted *name* cannot be caught by a CRC — the
// required-section check has to catch it instead of quietly decoding an
// emptier checkpoint.
func TestCheckpointSectionNameFlip(t *testing.T) {
	b, err := EncodeCheckpoint(sampleCheckpoint(true))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{CkptSecMeta, CkptSecZ} {
		bad := append([]byte(nil), b...)
		i := bytes.Index(bad, []byte(name))
		if i < 0 {
			t.Fatalf("section name %q not found in header", name)
		}
		bad[i] = 'x'
		if _, err := DecodeCheckpoint(bad); err == nil || !strings.Contains(err.Error(), "missing required") {
			t.Fatalf("flipped %q name accepted: err = %v", name, err)
		}
	}
}

// TestCheckpointDuplicateSectionRejected hand-crafts a file whose table
// lists the z section twice (both entries CRC-valid): a duplicate must
// be rejected, not last-entry-wins silently.
func TestCheckpointDuplicateSectionRejected(t *testing.T) {
	cp := sampleCheckpoint(false)
	var meta, z enc
	encodeCkptMeta(&meta, cp)
	encodeIntTable(&z, cp.Z)
	names := []string{CkptSecMeta, CkptSecZ, CkptSecZ}
	payloads := [][]byte{meta.buf, z.buf, z.buf}

	headerSize := len(CkptMagic) + 4 + 4
	for _, name := range names {
		headerSize += 4 + len(name) + 8 + 8 + 4
	}
	var e enc
	e.buf = append(e.buf, CkptMagic...)
	e.u32(CkptVersion)
	e.u32(uint32(len(names)))
	offset := uint64(headerSize + pad8(headerSize))
	for i, name := range names {
		e.rawStr(name)
		e.u64(offset)
		e.u64(uint64(len(payloads[i])))
		e.u32(crc32.ChecksumIEEE(payloads[i]))
		offset += uint64(len(payloads[i]) + pad8(len(payloads[i])))
	}
	e.buf = append(e.buf, zeros[:pad8(len(e.buf))]...)
	for _, p := range payloads {
		e.buf = append(e.buf, p...)
		e.buf = append(e.buf, zeros[:pad8(len(p))]...)
	}
	if _, err := DecodeCheckpoint(e.buf); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicated z section accepted: err = %v", err)
	}
}

// TestCheckpointSemanticCorruptionRejected: CRC-valid files whose values
// are out of range (a fuzzer's or an attacker's checkpoint) are rejected
// by shape validation before they can reach a resume.
func TestCheckpointSemanticCorruptionRejected(t *testing.T) {
	cases := []struct {
		name string
		mut  func(cp *lda.Checkpoint)
	}{
		{"zero-k", func(cp *lda.Checkpoint) { cp.Fingerprint.K = 0 }},
		{"zero-v", func(cp *lda.Checkpoint) { cp.Fingerprint.V = 0 }},
		{"sweep-zero", func(cp *lda.Checkpoint) { cp.Sweep = 0 }},
		{"sweep-past-iters", func(cp *lda.Checkpoint) { cp.Sweep = cp.Fingerprint.Iters + 1 }},
		{"doc-count", func(cp *lda.Checkpoint) { cp.Fingerprint.Docs = 99 }},
		{"topic-range", func(cp *lda.Checkpoint) { cp.Z[0][0] = cp.Fingerprint.K }},
		{"negative-topic", func(cp *lda.Checkpoint) { cp.Z[1][0] = -1 }},
		{"negative-rebuilds", func(cp *lda.Checkpoint) { cp.AliasRebuilds = -1 }},
		{"negative-stale", func(cp *lda.Checkpoint) { cp.MHStale = -1 }},
		{"mh-topic-rows", func(cp *lda.Checkpoint) { cp.MHSourceKV = cp.MHSourceKV[:1] }},
		{"mh-word-cols", func(cp *lda.Checkpoint) { cp.MHSourceKV[0] = cp.MHSourceKV[0][:2] }},
		{"mh-negative-count", func(cp *lda.Checkpoint) { cp.MHSourceKV[1][0] = -3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := sampleCheckpoint(true)
			tc.mut(cp)
			b, err := EncodeCheckpoint(cp)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := DecodeCheckpoint(b); err == nil {
				t.Fatal("semantically corrupt checkpoint accepted")
			}
		})
	}
}

func TestWriteReadCheckpointFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fit.ckpt")
	cp := sampleCheckpoint(true)
	if err := WriteCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, got) {
		t.Fatal("file round trip drift")
	}
	if err := WriteCheckpoint(path, nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
}

// FuzzDecodeCheckpoint drives arbitrary bytes through the checkpoint
// decoder: it may never panic or hang, and anything it accepts must
// survive the re-encode/re-decode closure byte-identically.
func FuzzDecodeCheckpoint(f *testing.F) {
	for _, withMH := range []bool{false, true} {
		b, err := EncodeCheckpoint(sampleCheckpoint(withMH))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)-5] ^= 0xff
		f.Add(flipped)
	}
	f.Add([]byte(CkptMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		cp, err := DecodeCheckpoint(b)
		if err != nil {
			return
		}
		e1, err := EncodeCheckpoint(cp)
		if err != nil {
			t.Fatalf("accepted input fails re-encode: %v", err)
		}
		cp2, err := DecodeCheckpoint(e1)
		if err != nil {
			t.Fatalf("re-encoded checkpoint rejected: %v", err)
		}
		e2, err := EncodeCheckpoint(cp2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatal("re-encode not a fixed point")
		}
	})
}
