package store

import (
	"fmt"
	"sync"
)

// Mapped is a snapshot decoded zero-copy over a read-only memory-mapped
// file: the big numeric sections (topics Phi/NKV/NK, corpus word counts,
// hierarchy phi rows, advisor ranks) alias the mapped bytes instead of
// being copied to the heap, so opening a multi-gigabyte model costs page
// tables, not RSS, and pages load lazily as queries touch them.
//
// Safety rules (see docs/ARCHITECTURE.md "Serving v2"):
//
//   - The snapshot is strictly read-only. The mapping is PROT_READ where
//     the platform supports it — writing through an aliased slice faults.
//   - The mapping must outlive every aliased slice: call Close only when
//     nothing dereferences the snapshot anymore. The serving layer retires
//     replaced mappings until server Close for exactly this reason.
//   - Rewrite snapshots atomically (store.Write's temp-file + rename), so
//     an open mapping keeps reading the old inode while a new file lands
//     at the path.
//
// Every per-section CRC is still verified at open time (reading each page
// once); corruption is an OpenMapped error, never a lazy fault later. On
// platforms without mmap (or with a non-64-bit little-endian layout) the
// same API transparently degrades to a heap read and/or a copying decode.
type Mapped struct {
	snap  *Snapshot
	data  []byte
	unmap func([]byte) error
	once  sync.Once
	err   error
}

// OpenMapped maps the snapshot at path read-only and decodes it zero-copy.
// The returned Mapped must be kept alive (and not Closed) for as long as
// any part of the snapshot is in use.
func OpenMapped(path string) (*Mapped, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	s, err := decode(data, true)
	if err != nil {
		if unmap != nil {
			unmap(data)
		}
		return nil, fmt.Errorf("store: mapped decode of %s: %w", path, err)
	}
	return &Mapped{snap: s, data: data, unmap: unmap}, nil
}

// Snapshot returns the decoded snapshot. Treat it as read-only; its slices
// may alias the mapping.
func (m *Mapped) Snapshot() *Snapshot { return m.snap }

// Size returns the mapped file size in bytes.
func (m *Mapped) Size() int { return len(m.data) }

// Close releases the mapping. After Close, any slice of the snapshot that
// aliased the mapping must no longer be touched — on mmap platforms a
// dereference faults. Close is idempotent and safe for concurrent use.
func (m *Mapped) Close() error {
	m.once.Do(func() {
		if m.unmap != nil {
			m.err = m.unmap(m.data)
		}
		m.data = nil
	})
	return m.err
}
