package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"lesm/internal/core"
	"lesm/internal/tpfg"
)

// Magic identifies a lesm snapshot file.
const Magic = "LESMSNAP"

// Version is the current format version. Decode accepts exactly this
// version; the header keeps older readers from misparsing newer files.
//
// Version history:
//
//	1: magic + section table + CRC32 payloads (PR 3).
//	2: alignment for zero-copy decode — section payloads start 8-aligned
//	   and payload strings are zero-padded to 8-byte boundaries, so every
//	   ints/floats array sits 8-aligned in the file and OpenMapped can
//	   serve it straight from mapped bytes. v1 files are rejected (refit
//	   and re-save); v2 files remain offset-driven, so the padding is
//	   invisible to the section table.
const Version = 2

// Section names, in the canonical file order.
const (
	SecVocab   = "vocab"
	SecCorpus  = "corpus"
	SecTopics  = "topics"
	SecHier    = "hier"
	SecRoles   = "roles"
	SecAdvisor = "advisor"
)

// sectionOrder fixes the on-disk order of present sections; determinism of
// the whole file depends on it.
var sectionOrder = []string{SecVocab, SecCorpus, SecTopics, SecHier, SecRoles, SecAdvisor}

// Topics is a flat topic-word model plus the sufficient statistics fold-in
// inference needs. Phi alone supports serving top-words; NKV/NK (token
// count tables from a Gibbs fit) let /infer sample against the exact
// smoothed distributions (NKV[k][w]+Beta)/(NK[k]+V*Beta). Models from
// count-free fitters (STROD) leave NKV/NK nil and fold-in falls back to
// Phi directly.
type Topics struct {
	K, V   int
	Weight []float64
	Phi    [][]float64
	Alpha  float64
	Beta   float64
	NKV    [][]int
	NK     []int
}

// CorpusMeta is the corpus-level metadata a server needs without shipping
// the documents themselves.
type CorpusMeta struct {
	NumDocs     int
	TotalTokens int
	WordCounts  []int
}

// TopicPhrases pairs a topic path with its ranked phrase list — the role
// analyzer's per-topic view, stored in hierarchy pre-order.
type TopicPhrases struct {
	Path    string
	Phrases []core.RankedPhrase
}

// Advisor is the persisted form of a TPFG inference result: the candidate
// network plus the normalized per-author rank vectors.
type Advisor struct {
	Net  *tpfg.Network
	Rank [][]float64
}

// Snapshot aggregates every persistable artifact. All fields are optional;
// absent fields simply produce no section.
type Snapshot struct {
	Vocab       []string
	Corpus      *CorpusMeta
	Topics      *Topics
	Hierarchy   *core.Hierarchy
	RolePhrases []TopicPhrases
	Advisor     *Advisor
}

// Sections lists the names of the sections this snapshot would encode, in
// file order.
func (s *Snapshot) Sections() []string {
	var out []string
	for _, name := range sectionOrder {
		if s.has(name) {
			out = append(out, name)
		}
	}
	return out
}

func (s *Snapshot) has(name string) bool {
	switch name {
	case SecVocab:
		return s.Vocab != nil
	case SecCorpus:
		return s.Corpus != nil
	case SecTopics:
		return s.Topics != nil
	case SecHier:
		return s.Hierarchy != nil
	case SecRoles:
		return s.RolePhrases != nil
	case SecAdvisor:
		return s.Advisor != nil
	}
	return false
}

// Encode serializes the snapshot into the self-describing binary format.
// The output is a pure function of the snapshot value.
func Encode(s *Snapshot) ([]byte, error) {
	if s == nil {
		return nil, errors.New("store: nil snapshot")
	}
	names := s.Sections()
	payloads := make([][]byte, len(names))
	for i, name := range names {
		var e enc
		switch name {
		case SecVocab:
			encodeVocab(&e, s.Vocab)
		case SecCorpus:
			encodeCorpus(&e, s.Corpus)
		case SecTopics:
			encodeTopics(&e, s.Topics)
		case SecHier:
			encodeHierarchy(&e, s.Hierarchy)
		case SecRoles:
			encodeRoles(&e, s.RolePhrases)
		case SecAdvisor:
			encodeAdvisor(&e, s.Advisor)
		}
		payloads[i] = e.buf
	}

	headerSize := len(Magic) + 4 + 4
	for _, name := range names {
		headerSize += 4 + len(name) + 8 + 8 + 4
	}
	// Section payloads start 8-aligned (relative to the file start, which
	// both the heap read path and mmap leave page-aligned), so the arrays
	// inside them are zero-copy servable. Padding lives between the header
	// and the first payload, and between payloads; the offset-driven
	// decoder never reads it.
	var e enc
	e.buf = append(e.buf, Magic...)
	e.u32(Version)
	e.u32(uint32(len(names)))
	offset := uint64(headerSize + pad8(headerSize))
	for i, name := range names {
		e.rawStr(name)
		e.u64(offset)
		e.u64(uint64(len(payloads[i])))
		e.u32(crc32.ChecksumIEEE(payloads[i]))
		offset += uint64(len(payloads[i]) + pad8(len(payloads[i])))
	}
	e.buf = append(e.buf, zeros[:pad8(len(e.buf))]...)
	for _, p := range payloads {
		e.buf = append(e.buf, p...)
		e.buf = append(e.buf, zeros[:pad8(len(p))]...)
	}
	return e.buf, nil
}

// Decode parses and CRC-verifies a snapshot. Sections with unknown names
// are skipped so the format can grow without breaking old readers. Every
// decoded value is heap-owned; for the aliasing fast path see OpenMapped.
func Decode(b []byte) (*Snapshot, error) {
	return decode(b, false)
}

// decode is the shared decoder. With zeroCopy set, the big numeric arrays
// of the snapshot ([]int / []float64 payloads) alias b wherever alignment
// and platform allow, so the caller must keep b alive and unmodified for
// the snapshot's lifetime and must treat the snapshot as read-only.
func decode(b []byte, zeroCopy bool) (*Snapshot, error) {
	if len(b) < len(Magic)+8 || string(b[:len(Magic)]) != Magic {
		return nil, errors.New("store: not a lesm snapshot (bad magic)")
	}
	d := &dec{buf: b, off: len(Magic)}
	if v := d.u32("version"); v != Version {
		return nil, fmt.Errorf("store: unsupported format version %d (want %d)", v, Version)
	}
	count := d.u32("section count")
	// A table entry is at least 24 bytes (empty name), so a count beyond
	// remaining/24 is corrupt; bounding it here keeps a corrupt header from
	// driving a huge pre-allocation.
	if count > uint32((len(b)-d.off)/24) {
		return nil, fmt.Errorf("store: corrupt section count %d", count)
	}
	type entry struct {
		name        string
		off, length uint64
		crc         uint32
	}
	entries := make([]entry, 0, count)
	for i := uint32(0); i < count; i++ {
		var en entry
		en.name = d.rawStr("section name")
		en.off = d.u64("section offset")
		en.length = d.u64("section length")
		en.crc = d.u32("section crc")
		entries = append(entries, en)
	}
	if d.err != nil {
		return nil, d.err
	}
	s := &Snapshot{}
	for _, en := range entries {
		if en.off > uint64(len(b)) || en.length > uint64(len(b))-en.off {
			return nil, fmt.Errorf("store: section %q out of bounds", en.name)
		}
		payload := b[en.off : en.off+en.length]
		if got := crc32.ChecksumIEEE(payload); got != en.crc {
			return nil, fmt.Errorf("store: section %q CRC mismatch (file %08x, computed %08x)", en.name, en.crc, got)
		}
		pd := &dec{buf: payload, zc: zeroCopy}
		switch en.name {
		case SecVocab:
			s.Vocab = decodeVocab(pd)
		case SecCorpus:
			s.Corpus = decodeCorpus(pd)
		case SecTopics:
			s.Topics = decodeTopics(pd)
		case SecHier:
			s.Hierarchy = decodeHierarchy(pd)
		case SecRoles:
			s.RolePhrases = decodeRoles(pd)
		case SecAdvisor:
			s.Advisor = decodeAdvisor(pd)
		default:
			continue // unknown section: forward compatibility
		}
		if pd.err != nil {
			return nil, fmt.Errorf("store: section %q: %w", en.name, pd.err)
		}
	}
	return s, nil
}

// Write encodes the snapshot and writes it to path atomically: temp
// file, fsync, rename, parent-directory fsync (see writeAtomic for the
// durability argument and failpoint.go for the injected-failure proof
// that no failure leaves a corrupt file at path).
func Write(path string, s *Snapshot) error {
	b, err := Encode(s)
	if err != nil {
		return err
	}
	return writeAtomic(path, b)
}

// Read loads and decodes the snapshot at path.
func Read(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// --- vocab ---

func encodeVocab(e *enc, words []string) {
	e.u64(uint64(len(words)))
	for _, w := range words {
		e.str(w)
	}
}

func decodeVocab(d *dec) []string {
	n := d.length(4, "vocab")
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.str("vocab word"))
	}
	return out
}

// --- corpus metadata ---

func encodeCorpus(e *enc, c *CorpusMeta) {
	e.i64(int64(c.NumDocs))
	e.i64(int64(c.TotalTokens))
	e.ints(c.WordCounts)
}

func decodeCorpus(d *dec) *CorpusMeta {
	return &CorpusMeta{
		NumDocs:     int(d.i64("corpus numDocs")),
		TotalTokens: int(d.i64("corpus totalTokens")),
		WordCounts:  d.ints("corpus wordCounts"),
	}
}

// --- topics ---

func encodeTopics(e *enc, t *Topics) {
	e.i64(int64(t.K))
	e.i64(int64(t.V))
	e.f64(t.Alpha)
	e.f64(t.Beta)
	e.floats(t.Weight)
	e.u64(uint64(len(t.Phi)))
	for _, row := range t.Phi {
		e.floats(row)
	}
	e.u64(uint64(len(t.NKV)))
	for _, row := range t.NKV {
		e.ints(row)
	}
	e.ints(t.NK)
}

func decodeTopics(d *dec) *Topics {
	t := &Topics{
		K:      int(d.i64("topics K")),
		V:      int(d.i64("topics V")),
		Alpha:  d.f64("topics alpha"),
		Beta:   d.f64("topics beta"),
		Weight: d.floats("topics weight"),
	}
	nPhi := d.length(8, "topics phi")
	if nPhi > 0 {
		t.Phi = make([][]float64, nPhi)
		for i := range t.Phi {
			t.Phi[i] = d.floats("topics phi row")
		}
	}
	nNKV := d.length(8, "topics nkv")
	if nNKV > 0 {
		t.NKV = make([][]int, nNKV)
		for i := range t.NKV {
			t.NKV[i] = d.ints("topics nkv row")
		}
	}
	t.NK = d.ints("topics nk")
	return t
}

// --- hierarchy ---

func sortedTypeIDs[T any](m map[core.TypeID]T) []core.TypeID {
	ids := make([]core.TypeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func encodePhrases(e *enc, ps []core.RankedPhrase) {
	e.u64(uint64(len(ps)))
	for _, p := range ps {
		e.ints(p.Words)
		e.str(p.Display)
		e.f64(p.Score)
	}
}

func decodePhrases(d *dec) []core.RankedPhrase {
	n := d.length(8+4+8, "phrases")
	if n == 0 {
		return nil
	}
	out := make([]core.RankedPhrase, n)
	for i := range out {
		out[i].Words = d.ints("phrase words")
		out[i].Display = d.str("phrase display")
		out[i].Score = d.f64("phrase score")
	}
	return out
}

func encodeNode(e *enc, n *core.TopicNode) {
	e.str(n.Path)
	e.i64(int64(n.Level))
	e.f64(n.Rho)
	phiIDs := sortedTypeIDs(n.Phi)
	e.u64(uint64(len(phiIDs)))
	for _, id := range phiIDs {
		e.i64(int64(id))
		e.floats(n.Phi[id])
	}
	encodePhrases(e, n.Phrases)
	entIDs := sortedTypeIDs(n.Entities)
	e.u64(uint64(len(entIDs)))
	for _, id := range entIDs {
		e.i64(int64(id))
		es := n.Entities[id]
		e.u64(uint64(len(es)))
		for _, en := range es {
			e.i64(int64(en.ID))
			e.str(en.Display)
			e.f64(en.Score)
		}
	}
	e.u64(uint64(len(n.Children)))
	for _, c := range n.Children {
		encodeNode(e, c)
	}
}

// maxHierDepth bounds decodeNode's recursion. Real hierarchies are a
// handful of levels deep; without the bound, a crafted chain of
// single-child nodes (CRC-valid — the checksum covers bytes, not shape)
// would drive one stack frame per level and kill the process with an
// unrecoverable stack overflow instead of a returned error.
const maxHierDepth = 10000

// decodeNode rebuilds one node. Children are attached through AddChild so
// the unexported parent links are restored; the stored Path/Level then
// overwrite the derived ones (they agree for any tree AddChild built).
func decodeNode(d *dec, parent *core.TopicNode, depth int) *core.TopicNode {
	if depth > maxHierDepth {
		d.fail("hierarchy nesting (depth limit)")
		return nil
	}
	var n *core.TopicNode
	if parent == nil {
		n = &core.TopicNode{Phi: map[core.TypeID][]float64{}, Entities: map[core.TypeID][]core.RankedEntity{}}
	} else {
		n = parent.AddChild()
	}
	n.Path = d.str("node path")
	n.Level = int(d.i64("node level"))
	n.Rho = d.f64("node rho")
	nPhi := d.length(16, "node phi")
	for i := 0; i < nPhi; i++ {
		id := core.TypeID(d.i64("node phi type"))
		n.Phi[id] = d.floats("node phi row")
	}
	n.Phrases = decodePhrases(d)
	nEnt := d.length(16, "node entities")
	for i := 0; i < nEnt; i++ {
		id := core.TypeID(d.i64("node entity type"))
		m := d.length(8+4+8, "node entity list")
		es := make([]core.RankedEntity, m)
		for j := range es {
			es[j].ID = int(d.i64("entity id"))
			es[j].Display = d.str("entity display")
			es[j].Score = d.f64("entity score")
		}
		n.Entities[id] = es
	}
	nc := d.length(1, "node children")
	for i := 0; i < nc; i++ {
		if d.err != nil {
			break
		}
		decodeNode(d, n, depth+1)
	}
	return n
}

func encodeHierarchy(e *enc, h *core.Hierarchy) {
	ids := sortedTypeIDs(h.TypeNames)
	e.u64(uint64(len(ids)))
	for _, id := range ids {
		e.i64(int64(id))
		e.str(h.TypeNames[id])
	}
	encodeNode(e, h.Root)
}

func decodeHierarchy(d *dec) *core.Hierarchy {
	h := &core.Hierarchy{TypeNames: map[core.TypeID]string{}}
	n := d.length(12, "hierarchy type names")
	for i := 0; i < n; i++ {
		id := core.TypeID(d.i64("type id"))
		h.TypeNames[id] = d.str("type name")
	}
	h.Root = decodeNode(d, nil, 0)
	return h
}

// --- role phrases ---

func encodeRoles(e *enc, rp []TopicPhrases) {
	e.u64(uint64(len(rp)))
	for _, tp := range rp {
		e.str(tp.Path)
		encodePhrases(e, tp.Phrases)
	}
}

func decodeRoles(d *dec) []TopicPhrases {
	n := d.length(4+8, "role phrases")
	out := make([]TopicPhrases, 0, n)
	for i := 0; i < n; i++ {
		var tp TopicPhrases
		tp.Path = d.str("role path")
		tp.Phrases = decodePhrases(d)
		out = append(out, tp)
	}
	return out
}

// --- advisor ---

func encodeAdvisor(e *enc, a *Advisor) {
	e.i64(int64(a.Net.NumAuthors))
	e.ints(a.Net.First)
	e.u64(uint64(len(a.Net.Cands)))
	for _, cs := range a.Net.Cands {
		e.u64(uint64(len(cs)))
		for _, c := range cs {
			e.i64(int64(c.Advisor))
			e.i64(int64(c.Start))
			e.i64(int64(c.End))
			e.f64(c.Local)
		}
	}
	e.u64(uint64(len(a.Rank)))
	for _, r := range a.Rank {
		e.floats(r)
	}
}

func decodeAdvisor(d *dec) *Advisor {
	a := &Advisor{Net: &tpfg.Network{}}
	a.Net.NumAuthors = int(d.i64("advisor numAuthors"))
	a.Net.First = d.ints("advisor first")
	n := d.length(8, "advisor cands")
	if n > 0 {
		a.Net.Cands = make([][]tpfg.Candidate, n)
		for i := range a.Net.Cands {
			m := d.length(32, "advisor cand list")
			if m == 0 {
				continue
			}
			cs := make([]tpfg.Candidate, m)
			for j := range cs {
				cs[j].Advisor = int(d.i64("cand advisor"))
				cs[j].Start = int(d.i64("cand start"))
				cs[j].End = int(d.i64("cand end"))
				cs[j].Local = d.f64("cand local")
			}
			a.Net.Cands[i] = cs
		}
	}
	nr := d.length(8, "advisor rank")
	if nr > 0 {
		a.Rank = make([][]float64, nr)
		for i := range a.Rank {
			a.Rank[i] = d.floats("advisor rank row")
		}
	}
	return a
}
