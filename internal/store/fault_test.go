package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// arm points the write path's failpoint at inj for the duration of the
// test, and guarantees production behavior is restored afterwards.
func arm(t *testing.T, inj *faultInjector) {
	t.Helper()
	fault = inj
	t.Cleanup(func() { fault = nil })
}

// TestWriteFaultsNeverCorrupt is the crash-safety harness. For every
// injected failure mode of the atomic write path, it proves the
// invariant the checkpoint/resume and hot-reload machinery lean on:
// after a FAILED write over an existing good file, that file is still
// byte-identical and still loads; after a failed write to a fresh path,
// the path simply does not exist. No failure mode ever yields an
// accepted-but-corrupt file.
func TestWriteFaultsNeverCorrupt(t *testing.T) {
	v1 := sampleCheckpoint(true)
	v2 := sampleCheckpoint(true)
	v2.Sweep = 18
	v2bytes, err := EncodeCheckpoint(v2)
	if err != nil {
		t.Fatal(err)
	}

	modes := []struct {
		name string
		inj  faultInjector
	}{
		{"write-error", faultInjector{writeErr: syscall.ENOSPC}},
		{"torn-write-0", faultInjector{tornWrite: true, tornWriteAt: 0}},
		{"torn-write-mid", faultInjector{tornWrite: true, tornWriteAt: len(v2bytes) / 2}},
		{"torn-write-last-byte", faultInjector{tornWrite: true, tornWriteAt: len(v2bytes) - 1}},
		{"fsync-error", faultInjector{failSync: true}},
		{"crash-before-rename", faultInjector{crashBeforeRename: true}},
		{"rename-error", faultInjector{failRename: true}},
	}
	for _, tc := range modes {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "fit.ckpt")
			if err := WriteCheckpoint(path, v1); err != nil {
				t.Fatal(err)
			}
			before, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			inj := tc.inj
			arm(t, &inj)
			if err := WriteCheckpoint(path, v2); err == nil {
				t.Fatal("injected failure reported success")
			}

			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(before, after) {
				t.Fatal("failed write modified the destination file")
			}
			got, err := ReadCheckpoint(path)
			if err != nil {
				t.Fatalf("previous file no longer loads: %v", err)
			}
			if got.Sweep != v1.Sweep {
				t.Fatalf("loaded sweep %d, want the surviving v1's %d", got.Sweep, v1.Sweep)
			}

			// Fresh destination: the failed write must leave it absent, not
			// half-written.
			freshPath := filepath.Join(dir, "fresh.ckpt")
			if err := WriteCheckpoint(freshPath, v2); err == nil {
				t.Fatal("injected failure reported success on a fresh path")
			}
			if _, err := os.Stat(freshPath); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("fresh path exists after a failed write (stat err = %v)", err)
			}

			// Disarm: the very next write must land v2 completely.
			fault = nil
			if err := WriteCheckpoint(path, v2); err != nil {
				t.Fatal(err)
			}
			if got, err := ReadCheckpoint(path); err != nil || got.Sweep != v2.Sweep {
				t.Fatalf("recovery write: sweep %v err %v, want %d", got, err, v2.Sweep)
			}
		})
	}
}

// TestCrashBeforeRenameLeavesInertDebris: the simulated crash leaves the
// temp file on disk, exactly like a real crash — and that debris is
// harmless: it does not shadow the destination and a later write
// succeeds alongside it.
func TestCrashBeforeRenameLeavesInertDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fit.ckpt")
	arm(t, &faultInjector{crashBeforeRename: true})
	if err := WriteCheckpoint(path, sampleCheckpoint(false)); !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("err = %v, want the simulated crash", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmps int
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			tmps++
		}
	}
	if tmps != 1 {
		t.Fatalf("%d temp files after crash, want exactly 1 (the debris)", tmps)
	}
	fault = nil
	if err := WriteCheckpoint(path, sampleCheckpoint(false)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
}

// TestDirSyncFailureAfterRename: the parent-directory fsync failing is
// the one mode where the new file HAS landed (the rename happened; only
// its durability promise is broken). The write must still report the
// error, and the landed file must be complete and loadable.
func TestDirSyncFailureAfterRename(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fit.ckpt")
	cp := sampleCheckpoint(true)
	arm(t, &faultInjector{failDirSync: true})
	if err := WriteCheckpoint(path, cp); !errors.Is(err, errInjectedDirOp) {
		t.Fatalf("err = %v, want the injected directory-sync failure", err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("landed file does not load: %v", err)
	}
	if got.Sweep != cp.Sweep {
		t.Fatalf("landed file sweep %d, want %d", got.Sweep, cp.Sweep)
	}
}

// TestSnapshotWriteSharesFaultSeam: Write (the snapshot path) goes
// through the same writeAtomic, so the same crash-safety holds for the
// serving artifacts the reload poller watches.
func TestSnapshotWriteSharesFaultSeam(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.lesm")
	if err := Write(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	arm(t, &faultInjector{tornWrite: true, tornWriteAt: 40})
	if err := Write(path, &Snapshot{Vocab: []string{"changed"}}); err == nil {
		t.Fatal("injected failure reported success")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed snapshot write modified the destination")
	}
	if _, err := Read(path); err != nil {
		t.Fatalf("previous snapshot no longer loads: %v", err)
	}
}
