// Parallel-runtime benchmarks: each engine at Parallelism 1 vs NumCPU over
// the same fixed-seed workload. `go test -bench 'CATHY|STROD|ToPMine|TPFG'
// -run '^$'` regenerates the numbers recorded in BENCH_pr1.json; the
// determinism guarantee means the P=1 and P=N variants produce identical
// output, so the comparison is pure wall clock.
package lesm_test

import (
	"runtime"
	"testing"

	"lesm"
	"lesm/internal/synth"
)

func benchCATHY(b *testing.B, p int) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 1500, NumAuthors: 400, Seed: 3001})
	net := ds.CollapsedNetwork(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lesm.BuildHierarchy(net, lesm.HierarchyOptions{
			K: 3, Levels: 2, Seed: 31, Parallelism: p,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSTROD(b *testing.B, p int) {
	ds := synth.Arxiv(synth.TextConfig{NumDocs: 4000, Seed: 3002})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lesm.InferTopics(ds.Corpus, 5, 32, lesm.RunOptions{Parallelism: p}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchToPMine(b *testing.B, p int) {
	ds := synth.Arxiv(synth.TextConfig{NumDocs: 3000, Seed: 3003})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lesm.TopicalPhrases(ds.Corpus, 5, 33, lesm.RunOptions{Parallelism: p}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTPFG(b *testing.B, p int) {
	g := synth.NewGenealogy(synth.GenealogyConfig{Seed: 3004})
	papers := make([]lesm.RelPaper, len(g.Papers))
	for i, pp := range g.Papers {
		papers[i] = lesm.RelPaper{Year: pp.Year, Authors: pp.Authors, Venue: pp.Venue}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lesm.MineAdvisorTree(papers, g.NumAuthors, 34, lesm.RunOptions{Parallelism: p}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCATHY_P1(b *testing.B)   { benchCATHY(b, 1) }
func BenchmarkCATHY_PN(b *testing.B)   { benchCATHY(b, runtime.NumCPU()) }
func BenchmarkSTROD_P1(b *testing.B)   { benchSTROD(b, 1) }
func BenchmarkSTROD_PN(b *testing.B)   { benchSTROD(b, runtime.NumCPU()) }
func BenchmarkToPMine_P1(b *testing.B) { benchToPMine(b, 1) }
func BenchmarkToPMine_PN(b *testing.B) { benchToPMine(b, runtime.NumCPU()) }
func BenchmarkTPFG_P1(b *testing.B)    { benchTPFG(b, 1) }
func BenchmarkTPFG_PN(b *testing.B)    { benchTPFG(b, runtime.NumCPU()) }
