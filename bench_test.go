// Benchmarks: one per paper table and figure. Each benchmark times the full
// regeneration of the artifact by the experiment harness at a reduced scale
// (the same code `cmd/repro` runs at scale 1.0). Absolute times are machine
// specific; the claim is the relative shape (see EXPERIMENTS.md).
package lesm_test

import (
	"testing"

	"lesm/internal/experiments"
)

// benchScale keeps a full `go test -bench .` run tractable while exercising
// every experiment end to end.
const benchScale = 0.06

func benchExperiment(b *testing.B, id string) {
	e := experiments.Find(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := e.Run(benchScale)
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// --- Chapter 3: hierarchical topic and community discovery ---

func BenchmarkTable3_2_HPMI_DBLP(b *testing.B)      { benchExperiment(b, "table3.2") }
func BenchmarkTable3_3_HPMI_NEWS(b *testing.B)      { benchExperiment(b, "table3.3") }
func BenchmarkTable3_4_NetworkStats(b *testing.B)   { benchExperiment(b, "table3.4") }
func BenchmarkTable3_5_Intrusion(b *testing.B)      { benchExperiment(b, "table3.5") }
func BenchmarkTable3_6_CaseStudyIR(b *testing.B)    { benchExperiment(b, "table3.6") }
func BenchmarkTable3_7_CaseStudyEgypt(b *testing.B) { benchExperiment(b, "table3.7") }
func BenchmarkFig3_4_SampleHierarchy(b *testing.B)  { benchExperiment(b, "fig3.4") }
func BenchmarkFig3_8_LinkWeights(b *testing.B)      { benchExperiment(b, "fig3.8") }

// --- Chapter 4: topical phrase mining ---

func BenchmarkTable4_3_MLPhrases(b *testing.B)       { benchExperiment(b, "table4.3") }
func BenchmarkTable4_4_NKQM(b *testing.B)            { benchExperiment(b, "table4.4") }
func BenchmarkFig4_2_MutualInformation(b *testing.B) { benchExperiment(b, "fig4.2") }
func BenchmarkFig4_3_PhraseIntrusion(b *testing.B)   { benchExperiment(b, "fig4.3") }
func BenchmarkFig4_4_Coherence(b *testing.B)         { benchExperiment(b, "fig4.4") }
func BenchmarkFig4_5_PhraseQuality(b *testing.B)     { benchExperiment(b, "fig4.5") }
func BenchmarkFig4_6_RuntimeSplit(b *testing.B)      { benchExperiment(b, "fig4.6") }
func BenchmarkTable4_5_MethodRuntimes(b *testing.B)  { benchExperiment(b, "table4.5") }
func BenchmarkTable4_6_AbstractTopics(b *testing.B)  { benchExperiment(b, "table4.6") }
func BenchmarkTable4_7_APNewsTopics(b *testing.B)    { benchExperiment(b, "table4.7") }
func BenchmarkTable4_8_YelpTopics(b *testing.B)      { benchExperiment(b, "table4.8") }

// --- Chapter 5: entity topical role analysis ---

func BenchmarkTable5_1_EntityPhrases(b *testing.B) { benchExperiment(b, "table5.1") }
func BenchmarkFig5_2_AuthorRoles(b *testing.B)     { benchExperiment(b, "fig5.2") }
func BenchmarkTable5_2_VenueRoles(b *testing.B)    { benchExperiment(b, "table5.2") }
func BenchmarkTable5_3_ERank(b *testing.B)         { benchExperiment(b, "table5.3") }

// --- Chapter 6: mining hierarchical relations ---

func BenchmarkTable6_1_TPFGAccuracy(b *testing.B)  { benchExperiment(b, "table6.1") }
func BenchmarkFig6_4_RuleAblation(b *testing.B)    { benchExperiment(b, "fig6.4") }
func BenchmarkTable6_2_SupervisedCRF(b *testing.B) { benchExperiment(b, "table6.2") }

// --- Chapter 7: scalable and robust topic discovery ---

func BenchmarkFig7_1_Scalability(b *testing.B)        { benchExperiment(b, "fig7.1") }
func BenchmarkTable7_1_Robustness(b *testing.B)       { benchExperiment(b, "table7.1") }
func BenchmarkTable7_2_Interpretability(b *testing.B) { benchExperiment(b, "table7.2") }
