// Parallel-runtime invariants of the public API: the shared worker pool
// (internal/par) chunks work independently of the parallelism level and
// merges reductions in chunk order, so every entry point must produce
// bit-identical output at Parallelism 1 and 8 under the same seed, and a
// cancelled context must surface promptly as an error.
package lesm

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"lesm/internal/synth"
)

// hierarchiesEqual compares two hierarchies exactly: same rendered shape and
// bitwise-equal topic distributions at every node.
func hierarchiesEqual(t *testing.T, a, b *Hierarchy) {
	t.Helper()
	if a.String() != b.String() {
		t.Fatalf("hierarchy shapes differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	var bs []*TopicNode
	b.Root.Walk(func(n *TopicNode) { bs = append(bs, n) })
	i := 0
	a.Root.Walk(func(n *TopicNode) {
		m := bs[i]
		i++
		if n.Rho != m.Rho {
			t.Fatalf("node %s: rho %v vs %v", n.Path, n.Rho, m.Rho)
		}
		for x, phi := range n.Phi {
			for w, p := range phi {
				if p != m.Phi[x][w] {
					t.Fatalf("node %s: phi[%d][%d] %v vs %v", n.Path, x, w, p, m.Phi[x][w])
				}
			}
		}
	})
}

func TestParallelDeterminism(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 800, NumAuthors: 200, Seed: 2001})
	text := synth.DBLPTitles(synth.TextConfig{NumDocs: 1200, Seed: 2002})
	for _, tc := range []struct {
		name string
		run  func(t *testing.T, parallelism int) any
	}{
		{"BuildHierarchy/CATHY", func(t *testing.T, p int) any {
			net := ds.CollapsedNetwork(0)
			h, err := BuildHierarchy(net, HierarchyOptions{
				K: 3, Levels: 2, LearnLinkWeights: true, Seed: 11, Parallelism: p,
			})
			if err != nil {
				t.Fatal(err)
			}
			return h
		}},
		{"BuildTextHierarchy/STROD", func(t *testing.T, p int) any {
			h, err := BuildTextHierarchy(text.Corpus, HierarchyOptions{
				Engine: EngineSTROD, K: 3, Levels: 2, Seed: 12, Parallelism: p,
			})
			if err != nil {
				t.Fatal(err)
			}
			return h
		}},
		{"InferTopics", func(t *testing.T, p int) any {
			m, err := InferTopics(text.Corpus, 4, 13, RunOptions{Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"TopicalPhrases", func(t *testing.T, p int) any {
			topics, err := TopicalPhrases(text.Corpus, 4, 14, RunOptions{Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}
			return topics
		}},
		{"AttachPhrases", func(t *testing.T, p int) any {
			// Fixed-P hierarchy so only the phrase attachment varies with p.
			h, err := BuildTextHierarchy(text.Corpus, HierarchyOptions{K: 3, Levels: 2, Seed: 15, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := AttachPhrases(text.Corpus, nil, h, PhraseOptions{Parallelism: p}); err != nil {
				t.Fatal(err)
			}
			var phrases [][]RankedPhrase
			h.Root.Walk(func(n *TopicNode) { phrases = append(phrases, n.Phrases) })
			return phrases
		}},
		{"MineAdvisorTreeSupervised", func(t *testing.T, p int) any {
			g := synth.NewGenealogy(synth.GenealogyConfig{Seed: 2005})
			papers := make([]RelPaper, len(g.Papers))
			for i, pp := range g.Papers {
				papers[i] = RelPaper{Year: pp.Year, Authors: pp.Authors, Venue: pp.Venue}
			}
			var train []int
			for a, adv := range g.AdvisorOf {
				if adv >= 0 && a%2 == 0 {
					train = append(train, a)
				}
			}
			res, err := MineAdvisorTreeSupervised(papers, g.NumAuthors, g.AdvisorOf, train, 16, RunOptions{Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}
			preds := make([]int, g.NumAuthors)
			for i := range preds {
				preds[i], _ = res.Advisor(i)
			}
			return preds
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.run(t, 1)
			parallel := tc.run(t, 8)
			if ha, ok := serial.(*Hierarchy); ok {
				hierarchiesEqual(t, ha, parallel.(*Hierarchy))
				return
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("P=1 and P=8 outputs differ:\n%#v\nvs\n%#v", serial, parallel)
			}
		})
	}
}

func TestCancelledContextReturnsError(t *testing.T) {
	ds := synth.DBLP(synth.DBLPConfig{NumPapers: 800, NumAuthors: 200, Seed: 2003})
	text := synth.DBLPTitles(synth.TextConfig{NumDocs: 1200, Seed: 2004})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		run  func() error
	}{
		{"BuildHierarchy", func() error {
			_, err := BuildHierarchy(ds.CollapsedNetwork(0), HierarchyOptions{
				K: 3, Levels: 2, Seed: 21, Ctx: ctx,
			})
			return err
		}},
		{"BuildTextHierarchy/STROD", func() error {
			_, err := BuildTextHierarchy(text.Corpus, HierarchyOptions{
				Engine: EngineSTROD, K: 3, Levels: 1, Seed: 22, Ctx: ctx,
			})
			return err
		}},
		{"InferTopics", func() error {
			_, err := InferTopics(text.Corpus, 4, 23, RunOptions{Ctx: ctx})
			return err
		}},
		{"TopicalPhrases", func() error {
			_, err := TopicalPhrases(text.Corpus, 4, 24, RunOptions{Ctx: ctx})
			return err
		}},
		{"AttachPhrases", func() error {
			h, err := BuildTextHierarchy(text.Corpus, HierarchyOptions{K: 3, Levels: 1, Seed: 25})
			if err != nil {
				return err
			}
			_, err = AttachPhrases(text.Corpus, nil, h, PhraseOptions{Ctx: ctx})
			return err
		}},
		{"MineAdvisorTreeSupervised", func() error {
			g := synth.NewGenealogy(synth.GenealogyConfig{Seed: 2006})
			papers := make([]RelPaper, len(g.Papers))
			for i, pp := range g.Papers {
				papers[i] = RelPaper{Year: pp.Year, Authors: pp.Authors, Venue: pp.Venue}
			}
			var train []int
			for a, adv := range g.AdvisorOf {
				if adv >= 0 {
					train = append(train, a)
				}
			}
			_, err := MineAdvisorTreeSupervised(papers, g.NumAuthors, g.AdvisorOf, train, 26, RunOptions{Ctx: ctx})
			return err
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}
