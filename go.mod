module lesm

go 1.21
