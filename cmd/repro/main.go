// Command repro regenerates the paper's tables and figures on the synthetic
// stand-in datasets.
//
// Usage:
//
//	repro -list                 # show available experiment ids
//	repro table3.2 fig4.2       # run specific experiments
//	repro -scale 0.25 all       # run everything at quarter scale
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"lesm/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	scale := flag.Float64("scale", 1.0, "workload scale factor in (0,1]")
	par := flag.Int("p", 0, "bound the whole Go runtime (GOMAXPROCS), and hence the engine worker pools, to n cores (0 = all)")
	flag.Parse()
	if *par > 0 {
		// The engines default their worker pools to GOMAXPROCS, so bounding
		// it here bounds every experiment.
		runtime.GOMAXPROCS(*par)
	}

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-10s %s\n", e.ID, e.Short)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: repro [-scale s] <experiment-id>... | all  (see repro -list)")
		os.Exit(2)
	}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range experiments.Registry {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}
	for _, id := range ids {
		e := experiments.Find(id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tab := e.Run(*scale)
		fmt.Println(tab.String())
		fmt.Printf("(%s regenerated in %v at scale %.2f)\n\n", id, time.Since(start).Round(time.Millisecond), *scale)
	}
}
