// Command lesm builds a phrase-represented topical hierarchy from a plain
// text corpus (one document per line) and prints it. With -save it also
// persists the fitted artifacts as a model snapshot that cmd/lesmd can
// serve.
//
// Usage:
//
//	lesm -k 4 -levels 2 -engine cathy corpus.txt
//	cat corpus.txt | lesm -engine strod
//	lesm -k 3 -topics 4 -save model.lesm corpus.txt   # fit & persist
//
// Observability (all observational — fitted models are bit-identical
// with or without them):
//
//	-progress            live per-sweep status line on stderr
//	-trace fit.jsonl     per-sweep sampler statistics and pool telemetry
//	                     as JSON lines
//	-probe 10            read-only corpus log-likelihood every 10 Gibbs
//	sweeps (appears in -progress and -trace)
//
// Crash-safe fitting (the -topics Gibbs fit only):
//
//	-checkpoint fit.ckpt      persist a resumable checkpoint every
//	                          -checkpoint-every sweeps (atomic replace);
//	                          SIGINT/SIGTERM stop gracefully at the next
//	                          sweep boundary after a final checkpoint
//	-checkpoint-every 10      checkpoint cadence in sweeps
//	-resume                   continue from the -checkpoint file if it
//	                          exists; the resumed fit's final model is
//	                          bit-identical to an uninterrupted run's
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"lesm"
)

func main() {
	k := flag.Int("k", 4, "children per topic (0 = BIC selection, cathy only)")
	levels := flag.Int("levels", 2, "hierarchy depth below the root")
	engine := flag.String("engine", "cathy", "hierarchy engine: cathy | strod")
	seed := flag.Int64("seed", 1, "random seed")
	stem := flag.Bool("stem", false, "apply Porter stemming")
	top := flag.Int("top", 8, "phrases to print per topic")
	par := flag.Int("p", 0, "parallel workers for the mining engines (0 = GOMAXPROCS)")
	save := flag.String("save", "", "persist the fitted artifacts as a snapshot at this path (see cmd/lesmd)")
	topics := flag.Int("topics", 0, "with -save: also fit a flat Gibbs topic model with this many topics for /infer")
	sampler := flag.String("sampler", "", "Gibbs sampling core for the -topics flat model: empty for auto (resolved per workload), 'mh' for the Metropolis-Hastings alias core, 'sparse' for the bucket+alias core, 'dense' for the O(K)-per-token core")
	aliasRefresh := flag.Int("alias-refresh", 0, "mh sampler: rebuild the alias proposal tables every this many sweeps (0 = default)")
	progress := flag.Bool("progress", false, "paint a live per-sweep status line on stderr (throughput, changed fraction, accept rates, convergence)")
	trace := flag.String("trace", "", "write per-sweep sampler statistics and pool telemetry as JSON lines to this file")
	probe := flag.Int("probe", 0, "compute the read-only corpus log-likelihood convergence probe every this many Gibbs sweeps (0 = never; costs O(tokens x K) per evaluation)")
	ckptPath := flag.String("checkpoint", "", "with -topics: persist a resumable fit checkpoint at this path every -checkpoint-every sweeps, and on SIGINT/SIGTERM")
	ckptEvery := flag.Int("checkpoint-every", 10, "with -checkpoint: checkpoint cadence in sweeps")
	resume := flag.Bool("resume", false, "with -checkpoint: continue the fit from the checkpoint file if it exists (fresh start when it does not)")
	flag.Parse()

	// Reject a bad -sampler up front, even when -topics is 0 and the flag
	// would otherwise be silently unused.
	if !lesm.Sampler(*sampler).Valid() {
		log.Fatalf("lesm: unknown -sampler %q (want 'mh', 'sparse' or 'dense')", *sampler)
	}
	if *aliasRefresh < 0 {
		log.Fatalf("lesm: -alias-refresh %d, need >= 0", *aliasRefresh)
	}
	if *probe < 0 {
		log.Fatalf("lesm: -probe %d, need >= 0", *probe)
	}
	if *ckptPath != "" && *ckptEvery < 1 {
		log.Fatalf("lesm: -checkpoint-every %d, need >= 1", *ckptEvery)
	}
	if *resume && *ckptPath == "" {
		log.Fatal("lesm: -resume requires -checkpoint (the file to resume from)")
	}
	if *ckptPath != "" && *topics == 0 {
		log.Fatal("lesm: -checkpoint requires -topics (only the flat Gibbs fit checkpoints)")
	}

	// Recording sinks. Both are observational: fitted models are
	// bit-identical with or without them.
	var prog *lesm.ProgressRecorder
	var traceRec *lesm.TraceRecorder
	var recs []lesm.Recorder
	if *progress {
		prog = lesm.NewProgressRecorder(os.Stderr)
		recs = append(recs, prog)
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		traceRec = lesm.NewTraceRecorder(f)
		recs = append(recs, traceRec)
	}
	rec := lesm.MultiRecorder(recs...)
	finishRec := func() {
		if prog != nil {
			prog.Done()
		}
		if traceRec != nil {
			if err := traceRec.Close(); err != nil {
				log.Printf("lesm: trace: %v", err)
			}
		}
	}
	// fatal closes the sinks first so an aborted fit still leaves a
	// complete, parseable trace file (log.Fatal skips deferred calls).
	fatal := func(err error) {
		finishRec()
		log.Fatal(err)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	pipeline := lesm.DefaultPipeline
	pipeline.Stem = *stem
	corpus := lesm.NewCorpus()
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		if line := scanner.Text(); len(line) > 0 {
			corpus.AddText(line, pipeline)
		}
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}

	opt := lesm.HierarchyOptions{K: *k, Levels: *levels, Seed: *seed, Parallelism: *par, Recorder: rec}
	if *engine == "strod" {
		opt.Engine = lesm.EngineSTROD
	}
	h, err := lesm.BuildTextHierarchy(corpus, opt)
	if err != nil {
		fatal(err)
	}
	if _, err := lesm.AttachPhrases(corpus, nil, h, lesm.PhraseOptions{TopN: *top, Parallelism: *par}); err != nil {
		fatal(err)
	}
	if prog != nil {
		prog.Done() // end the live line before the hierarchy prints
	}
	fmt.Print(h.String())

	if *save != "" {
		art := &lesm.Artifact{
			Hierarchy:   h,
			Vocab:       corpus.Vocab,
			Corpus:      lesm.NewCorpusMeta(corpus),
			RolePhrases: lesm.RolePhrasesOf(h),
		}
		if *topics > 0 {
			resolved := lesm.Sampler(*sampler).ResolveFor(*topics, corpus.Vocab.Size())
			fmt.Printf("fitting %d flat topics with the %s sampler\n", *topics, resolved)
			ro := lesm.RunOptions{
				Parallelism: *par, Sampler: lesm.Sampler(*sampler), AliasRefresh: *aliasRefresh,
				Recorder: rec, ProbeEvery: *probe,
			}
			if *ckptPath != "" {
				ro.CheckpointEvery = *ckptEvery
				ro.CheckpointFunc = func(cp *lesm.Checkpoint) error {
					return lesm.SaveCheckpoint(*ckptPath, cp)
				}
				// SIGINT/SIGTERM request a graceful stop: the fit finishes
				// its current sweep, persists a final checkpoint, and
				// returns ErrStopped. A second signal kills immediately.
				var stopping atomic.Bool
				sig := make(chan os.Signal, 2)
				signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
				go func() {
					<-sig
					stopping.Store(true)
					fmt.Fprintf(os.Stderr, "lesm: stopping at the next sweep boundary (signal again to kill)\n")
					<-sig
					os.Exit(1)
				}()
				ro.Stop = stopping.Load
				if *resume {
					cp, err := lesm.LoadCheckpoint(*ckptPath)
					switch {
					case errors.Is(err, fs.ErrNotExist):
						fmt.Fprintf(os.Stderr, "lesm: no checkpoint at %s, starting fresh\n", *ckptPath)
					case err != nil:
						fatal(err)
					default:
						fmt.Fprintf(os.Stderr, "lesm: resuming from %s at sweep %d/%d\n", *ckptPath, cp.Sweep, cp.Fingerprint.Iters)
						ro.Resume = cp
					}
				}
			}
			tm, err := lesm.InferTopicsGibbs(corpus, *topics, *seed, ro)
			if errors.Is(err, lesm.ErrStopped) {
				if prog != nil {
					prog.Done()
				}
				fmt.Fprintf(os.Stderr, "lesm: fit stopped; resume with -resume -checkpoint %s\n", *ckptPath)
				finishRec()
				return
			}
			if err != nil {
				fatal(err)
			}
			if prog != nil {
				prog.Done()
			}
			art.Topics = tm
		}
		if err := lesm.Save(*save, art); err != nil {
			fatal(err)
		}
		fmt.Printf("saved snapshot %s (sections: %v)\n", *save, art.Sections())
	}
	finishRec()
}
