// Command lesm builds a phrase-represented topical hierarchy from a plain
// text corpus (one document per line) and prints it. With -save it also
// persists the fitted artifacts as a model snapshot that cmd/lesmd can
// serve.
//
// Usage:
//
//	lesm -k 4 -levels 2 -engine cathy corpus.txt
//	cat corpus.txt | lesm -engine strod
//	lesm -k 3 -topics 4 -save model.lesm corpus.txt   # fit & persist
//
// Observability (all observational — fitted models are bit-identical
// with or without them):
//
//	-progress            live per-sweep status line on stderr
//	-trace fit.jsonl     per-sweep sampler statistics and pool telemetry
//	                     as JSON lines
//	-probe 10            read-only corpus log-likelihood every 10 Gibbs
//	                     sweeps (appears in -progress and -trace)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"lesm"
)

func main() {
	k := flag.Int("k", 4, "children per topic (0 = BIC selection, cathy only)")
	levels := flag.Int("levels", 2, "hierarchy depth below the root")
	engine := flag.String("engine", "cathy", "hierarchy engine: cathy | strod")
	seed := flag.Int64("seed", 1, "random seed")
	stem := flag.Bool("stem", false, "apply Porter stemming")
	top := flag.Int("top", 8, "phrases to print per topic")
	par := flag.Int("p", 0, "parallel workers for the mining engines (0 = GOMAXPROCS)")
	save := flag.String("save", "", "persist the fitted artifacts as a snapshot at this path (see cmd/lesmd)")
	topics := flag.Int("topics", 0, "with -save: also fit a flat Gibbs topic model with this many topics for /infer")
	sampler := flag.String("sampler", "", "Gibbs sampling core for the -topics flat model: empty for auto (resolved per workload), 'mh' for the Metropolis-Hastings alias core, 'sparse' for the bucket+alias core, 'dense' for the O(K)-per-token core")
	aliasRefresh := flag.Int("alias-refresh", 0, "mh sampler: rebuild the alias proposal tables every this many sweeps (0 = default)")
	progress := flag.Bool("progress", false, "paint a live per-sweep status line on stderr (throughput, changed fraction, accept rates, convergence)")
	trace := flag.String("trace", "", "write per-sweep sampler statistics and pool telemetry as JSON lines to this file")
	probe := flag.Int("probe", 0, "compute the read-only corpus log-likelihood convergence probe every this many Gibbs sweeps (0 = never; costs O(tokens x K) per evaluation)")
	flag.Parse()

	// Reject a bad -sampler up front, even when -topics is 0 and the flag
	// would otherwise be silently unused.
	if !lesm.Sampler(*sampler).Valid() {
		log.Fatalf("lesm: unknown -sampler %q (want 'mh', 'sparse' or 'dense')", *sampler)
	}
	if *aliasRefresh < 0 {
		log.Fatalf("lesm: -alias-refresh %d, need >= 0", *aliasRefresh)
	}
	if *probe < 0 {
		log.Fatalf("lesm: -probe %d, need >= 0", *probe)
	}

	// Recording sinks. Both are observational: fitted models are
	// bit-identical with or without them.
	var prog *lesm.ProgressRecorder
	var traceRec *lesm.TraceRecorder
	var recs []lesm.Recorder
	if *progress {
		prog = lesm.NewProgressRecorder(os.Stderr)
		recs = append(recs, prog)
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		traceRec = lesm.NewTraceRecorder(f)
		recs = append(recs, traceRec)
	}
	rec := lesm.MultiRecorder(recs...)
	finishRec := func() {
		if prog != nil {
			prog.Done()
		}
		if traceRec != nil {
			if err := traceRec.Close(); err != nil {
				log.Printf("lesm: trace: %v", err)
			}
		}
	}
	// fatal closes the sinks first so an aborted fit still leaves a
	// complete, parseable trace file (log.Fatal skips deferred calls).
	fatal := func(err error) {
		finishRec()
		log.Fatal(err)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	pipeline := lesm.DefaultPipeline
	pipeline.Stem = *stem
	corpus := lesm.NewCorpus()
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		if line := scanner.Text(); len(line) > 0 {
			corpus.AddText(line, pipeline)
		}
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}

	opt := lesm.HierarchyOptions{K: *k, Levels: *levels, Seed: *seed, Parallelism: *par, Recorder: rec}
	if *engine == "strod" {
		opt.Engine = lesm.EngineSTROD
	}
	h, err := lesm.BuildTextHierarchy(corpus, opt)
	if err != nil {
		fatal(err)
	}
	if _, err := lesm.AttachPhrases(corpus, nil, h, lesm.PhraseOptions{TopN: *top, Parallelism: *par}); err != nil {
		fatal(err)
	}
	if prog != nil {
		prog.Done() // end the live line before the hierarchy prints
	}
	fmt.Print(h.String())

	if *save != "" {
		art := &lesm.Artifact{
			Hierarchy:   h,
			Vocab:       corpus.Vocab,
			Corpus:      lesm.NewCorpusMeta(corpus),
			RolePhrases: lesm.RolePhrasesOf(h),
		}
		if *topics > 0 {
			resolved := lesm.Sampler(*sampler).ResolveFor(*topics, corpus.Vocab.Size())
			fmt.Printf("fitting %d flat topics with the %s sampler\n", *topics, resolved)
			tm, err := lesm.InferTopicsGibbs(corpus, *topics, *seed,
				lesm.RunOptions{
					Parallelism: *par, Sampler: lesm.Sampler(*sampler), AliasRefresh: *aliasRefresh,
					Recorder: rec, ProbeEvery: *probe,
				})
			if err != nil {
				fatal(err)
			}
			if prog != nil {
				prog.Done()
			}
			art.Topics = tm
		}
		if err := lesm.Save(*save, art); err != nil {
			fatal(err)
		}
		fmt.Printf("saved snapshot %s (sections: %v)\n", *save, art.Sections())
	}
	finishRec()
}
