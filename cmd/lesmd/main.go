// Command lesmd serves a fitted model snapshot over HTTP/JSON: structure
// lookups answer from immutable in-memory state, and /infer runs
// deterministic fold-in Gibbs inference for unseen documents.
//
// Usage:
//
//	lesm -save model.lesm -topics 4 corpus.txt   # fit & persist
//	lesmd -snapshot model.lesm -addr :8471       # serve
//
// Serving v2 knobs (see docs/ARCHITECTURE.md "Serving v2"):
//
//	-mmap                zero-copy decode: big sections serve straight
//	                     from the page cache instead of heap copies
//	-reload-poll 10s     hot reload: poll the snapshot file and swap a
//	                     refit in atomically, zero downtime
//	-batch-window 2ms    coalesce /infer requests arriving within the
//	                     window into one fold-in batch (bit-identical
//	                     per-request results)
//	-batch-docs 64       max documents per coalesced batch
//
// Serving v3 traffic hardening (docs/ARCHITECTURE.md "Serving v3"):
//
//	-max-queue 64        admission control: /infer requests beyond
//	                     max-inflight+max-queue in the system are shed
//	                     with 503 + Retry-After instead of queueing
//	                     without bound
//	-route-timeout 2s    per-request timeout on every route; cancels the
//	                     request context (queued work drops out, running
//	                     fold-in aborts)
//	-adaptive-window     derive the effective coalescing window from an
//	                     EWMA of observed inter-arrival times, bounded
//	                     above by -batch-window
//
// Observability: GET /metrics serves Prometheus text format (per-route
// request/error counters and latency histograms, coalescer batch-size
// histogram, queue/in-flight gauges, reload generation, fold-in sampler
// telemetry, Go runtime basics) with no external dependencies; structure
// routes carry ETag = snapshot generation and honor If-None-Match with
// 304s. -pprof additionally mounts net/http/pprof under /debug/pprof/
// and expvar at /debug/vars — off by default because those endpoints
// expose process internals; keep them behind the admin boundary.
//
// A refit goes live with either the poller or an explicit
//
//	curl -X POST host:8471/admin/reload
//
// Endpoints:
//
//	GET  /healthz                     liveness, sections, generation, batch counters
//	GET  /metrics                     Prometheus text-format metrics
//	GET  /topics                      topic list with weights
//	GET  /topics/{k}/top-words?n=10   topic k's top words
//	GET  /hierarchy/node/{id}         hierarchy node by path (o/1/2 or o.1.2)
//	GET  /phrases/search?q=&limit=    ranked phrase search (substring)
//	GET  /search?q=&limit=            fuzzy entity search over words,
//	                                  phrases and authors (bounded edit
//	                                  distance, ranked typed hits)
//	GET  /entity/{name}               composed entity profile: fuzzy name
//	                                  resolution, then topic mixture /
//	                                  hierarchy placements / phrases for a
//	                                  word, occurrences + constituents for
//	                                  a phrase, advisor + advisees for an
//	                                  author
//	GET  /advisor/{author}            advisor ranking for a numeric
//	                                  author id
//	POST /infer                       fold-in inference for new documents
//	POST /admin/reload                force an immediate snapshot reload
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lesm/internal/lda"
	"lesm/internal/serve"
)

func main() {
	snapshot := flag.String("snapshot", "", "path to the model snapshot (required)")
	addr := flag.String("addr", ":8471", "listen address")
	p := flag.Int("p", 0, "fold-in workers per /infer batch (0 = GOMAXPROCS)")
	inflight := flag.Int("max-inflight", 4, "max concurrent /infer batches")
	sweeps := flag.Int("sweeps", 30, "default fold-in Gibbs sweeps")
	alpha := flag.Float64("alpha", 0, "fold-in document prior (0 = 0.1; the fitted 50/K prior swamps short documents — pass it explicitly for posterior-mean behavior)")
	sampler := flag.String("sampler", "", "fold-in sampling core: empty for auto (resolved per model), 'mh' for Metropolis-Hastings alias proposals, 'sparse' for the bucket+alias core, 'dense' for the O(K)-per-token core (A/B validation)")
	mmap := flag.Bool("mmap", false, "decode snapshots zero-copy over a read-only memory map (large models: page tables instead of heap)")
	reloadPoll := flag.Duration("reload-poll", 0, "poll the snapshot file at this interval and hot-reload on change (0 = admin-reload only)")
	batchWindow := flag.Duration("batch-window", 0, "coalesce /infer requests arriving within this window into one fold-in batch (0 = off)")
	batchDocs := flag.Int("batch-docs", 64, "max documents per coalesced /infer batch")
	adaptiveWindow := flag.Bool("adaptive-window", false, "derive the effective coalescing window from an EWMA of observed /infer inter-arrival times, bounded above by -batch-window")
	maxQueue := flag.Int("max-queue", 64, "max /infer requests waiting behind the in-flight slots before load shedding (503 + Retry-After)")
	routeTimeout := flag.Duration("route-timeout", 0, "per-request timeout on every route; cancels the request context (0 = none)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ and expvar at /debug/vars (admin-scoped: exposes stacks, heap contents, and the command line)")
	flag.Parse()

	if *snapshot == "" {
		flag.Usage()
		os.Exit(2)
	}
	// The same load routine hot reloads use, so generation 1 and every
	// later generation decode identically.
	snap, closer, err := serve.LoadSnapshot(*snapshot, *mmap)
	if err != nil {
		log.Fatalf("lesmd: load %s: %v", *snapshot, err)
	}
	srv, err := serve.New(snap, serve.Options{
		P: *p, MaxInFlight: *inflight, Sweeps: *sweeps, Alpha: *alpha,
		Sampler:        lda.Sampler(*sampler),
		SnapshotPath:   *snapshot,
		ReloadPoll:     *reloadPoll,
		MMap:           *mmap,
		BatchWindow:    *batchWindow,
		MaxBatchDocs:   *batchDocs,
		AdaptiveWindow: *adaptiveWindow,
		MaxQueue:       *maxQueue,
		RouteTimeout:   *routeTimeout,
		Pprof:          *pprofOn,
	})
	if err != nil {
		log.Fatalf("lesmd: %v", err)
	}
	srv.AdoptCloser(closer)
	log.Printf("lesmd: loaded %s (sections: %s; mmap=%v reload-poll=%s batch-window=%s adaptive=%v max-queue=%d route-timeout=%s), listening on %s",
		*snapshot, strings.Join(snap.Sections(), ", "), *mmap, *reloadPoll, *batchWindow, *adaptiveWindow, *maxQueue, *routeTimeout, *addr)
	if t := snap.Topics; t != nil {
		k, v := 0, 0
		switch {
		case t.NKV != nil:
			k = len(t.NKV)
			if k > 0 {
				v = len(t.NKV[0])
			}
		case t.Phi != nil:
			k = len(t.Phi)
			if k > 0 {
				v = len(t.Phi[0])
			}
		}
		log.Printf("lesmd: /infer fold-in resolved to the %s sampler (K=%d, V=%d)",
			lda.Sampler(*sampler).ResolveFor(k, v), k, v)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-sig
		// Shutdown stops the listener (unblocking ListenAndServe) and then
		// drains in-flight requests; main must wait for the drain, not just
		// for ListenAndServe to return, or exiting would sever them.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("lesmd: %v", err)
	}
	<-drained
	// With the HTTP side drained, stop the coalescer and reload poller and
	// release the snapshot mappings.
	if err := srv.Close(); err != nil {
		log.Printf("lesmd: close: %v", err)
	}
}
