// Command lesmd serves a fitted model snapshot over HTTP/JSON: structure
// lookups answer from immutable in-memory state, and /infer runs
// deterministic fold-in Gibbs inference for unseen documents.
//
// Usage:
//
//	lesm -save model.lesm -topics 4 corpus.txt   # fit & persist
//	lesmd -snapshot model.lesm -addr :8471       # serve
//
// Endpoints:
//
//	GET  /healthz                     liveness + loaded sections
//	GET  /topics                      topic list with weights
//	GET  /topics/{k}/top-words?n=10   topic k's top words
//	GET  /hierarchy/node/{id}         hierarchy node by path (o/1/2 or o.1.2)
//	GET  /phrases/search?q=&limit=    ranked phrase search
//	GET  /advisor/{author}            advisor ranking for an author
//	POST /infer                       fold-in inference for new documents
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lesm/internal/lda"
	"lesm/internal/serve"
	"lesm/internal/store"
)

func main() {
	snapshot := flag.String("snapshot", "", "path to the model snapshot (required)")
	addr := flag.String("addr", ":8471", "listen address")
	p := flag.Int("p", 0, "fold-in workers per /infer batch (0 = GOMAXPROCS)")
	inflight := flag.Int("max-inflight", 4, "max concurrent /infer batches")
	sweeps := flag.Int("sweeps", 30, "default fold-in Gibbs sweeps")
	alpha := flag.Float64("alpha", 0, "fold-in document prior (0 = 0.1; the fitted 50/K prior swamps short documents — pass it explicitly for posterior-mean behavior)")
	sampler := flag.String("sampler", "", "fold-in sampling core: empty or 'sparse' for the bucket+alias core, 'dense' for the O(K)-per-token core (A/B validation)")
	flag.Parse()

	if *snapshot == "" {
		flag.Usage()
		os.Exit(2)
	}
	snap, err := store.Read(*snapshot)
	if err != nil {
		log.Fatalf("lesmd: load %s: %v", *snapshot, err)
	}
	srv, err := serve.New(snap, serve.Options{
		P: *p, MaxInFlight: *inflight, Sweeps: *sweeps, Alpha: *alpha,
		Sampler: lda.Sampler(*sampler),
	})
	if err != nil {
		log.Fatalf("lesmd: %v", err)
	}
	log.Printf("lesmd: loaded %s (sections: %s), listening on %s",
		*snapshot, strings.Join(snap.Sections(), ", "), *addr)

	hs := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-sig
		// Shutdown stops the listener (unblocking ListenAndServe) and then
		// drains in-flight requests; main must wait for the drain, not just
		// for ListenAndServe to return, or exiting would sever them.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("lesmd: %v", err)
	}
	<-drained
}
